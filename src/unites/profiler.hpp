// UNITES whitebox profiler: per-mechanism execution accounting.
//
// The paper's whitebox metric class calls for "per-function instruction
// counts" and timing attribution inside synthesized configurations —
// numbers a blackbox observer can never produce. This profiler is the
// repo's answer: every mechanism handler, MANTTS stage, link path, and
// playout step opens an RAII ProfileScope (via UNITES_PROF / UNITES_PROF_S)
// and the scopes nest into a hierarchical zone tree — a flamegraph of the
// protocol stack, per session, with call counts, self virtual time, and
// self wall time per zone.
//
// Two timebases, two roles:
//  * `sim_ns` (virtual) and `calls` are pure functions of the scenario and
//    seed, so they survive the sharded engine's determinism gate: a merged
//    profile is byte-identical for --jobs 1 and --jobs 8. (Handlers run in
//    zero virtual time by design, so sim_ns doubles as an assertion that
//    no zone accidentally spans a scheduler wait.)
//  * `wall_ns` is real host time — the perf signal — and is therefore
//    nondeterministic. Canonical exports exclude it (include_wall=false);
//    single-run profiles may include it.
//
// Thread model matches TraceRecorder (DESIGN.md §9): no process-global
// profiler. Each thread has a default instance; a shard worker installs a
// shard-local one with ScopedProfiler, so N worlds profile into N disjoint
// trees with no locking. Zones are a single predicted branch when the
// current profiler is disabled or has no bound clock.
#pragma once

#include "sim/time.hpp"

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace adaptive::sim {
class EventScheduler;
}

namespace adaptive::unites {

namespace detail {
/// Raw wall timestamp for scope timing. Wall time is a diagnostic signal
/// (excluded from canonical exports), so the cheapest monotonic-ish
/// counter wins: rdtsc on x86 (~7ns vs ~25ns for clock_gettime); ticks
/// are converted to nanoseconds at snapshot time with a calibrated
/// factor. Elsewhere, fall back to steady_clock nanoseconds.
#if defined(__x86_64__) || defined(__i386__)
inline std::uint64_t wall_ticks() { return __builtin_ia32_rdtsc(); }
#else
inline std::uint64_t wall_ticks() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

/// Record the tick/steady-clock anchor pair used to calibrate tick→ns
/// conversion. Idempotent; Profiler::enable() calls it so the calibration
/// interval spans the whole profiled run.
void anchor_wall_calibration();
}  // namespace detail

/// One aggregated zone in a profile snapshot. Children are sorted by name
/// and coalesced by string content, so snapshots of the same run are
/// byte-identical regardless of string-literal addresses or thread count.
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  std::int64_t sim_ns = 0;    ///< self (exclusive) virtual time
  std::uint64_t wall_ns = 0;  ///< self (exclusive) wall time — nondeterministic
  std::vector<ProfileNode> children;

  /// Fold `other` into this node (same name assumed): counts and times
  /// add, children merge recursively by name.
  void merge(const ProfileNode& other);
};

/// A full profile: one root per session (named "session/<id>"; id 0 holds
/// zones opened outside any session scope), sorted by session id.
struct ProfileTree {
  std::vector<ProfileNode> roots;

  [[nodiscard]] bool empty() const { return roots.empty(); }
  void merge(const ProfileTree& other);
  /// Total zone count (excluding the synthetic session roots).
  [[nodiscard]] std::size_t zone_count() const;
  /// Walk roots/children by exact names; nullptr when absent.
  [[nodiscard]] const ProfileNode* find(std::initializer_list<std::string_view> path) const;
  /// Collapsed-stack export ("root;child;grandchild <weight>" per line),
  /// the input format flamegraph renderers consume. `wall` selects wall
  /// nanoseconds as the weight (perf profile; nondeterministic), otherwise
  /// call counts (deterministic). Zones with zero weight are omitted.
  [[nodiscard]] std::string to_folded(bool wall = true) const;
};

class ProfileScope;

class Profiler {
public:
  /// The calling thread's current profiler: the innermost instance
  /// installed with ScopedProfiler, else the thread's default one.
  [[nodiscard]] static Profiler& current();

  /// Install `p` (nullptr = revert to the thread default) as the calling
  /// thread's current profiler; returns the previous override. Prefer
  /// ScopedProfiler.
  static Profiler* install(Profiler* p);

  void enable() {
    enabled_ = true;
    detail::anchor_wall_calibration();
  }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Virtual-time source. World binds its scheduler on construction and
  /// unbinds on destruction; zones no-op while no clock is bound, so an
  /// enabled profiler still costs one branch outside any world.
  void bind_clock(const sim::EventScheduler* clock) { clock_ = clock; }
  [[nodiscard]] const sim::EventScheduler* clock() const { return clock_; }

  /// Zones record only when enabled AND clocked.
  [[nodiscard]] bool active() const { return enabled_ && clock_ != nullptr; }

  /// Zones entered (scope opens) since enable()/clear().
  [[nodiscard]] std::uint64_t entered() const { return entered_; }

  /// Deterministic aggregated snapshot (see ProfileTree). Open scopes are
  /// included with their counts so far (calls counts completed exits).
  [[nodiscard]] ProfileTree snapshot() const;

  void clear();

  /// Debug echo: mirror every completed top-level zone through sim::Logger
  /// at kTrace level (same convention as TraceRecorder::set_echo).
  void set_echo(bool on) { echo_ = on; }
  [[nodiscard]] bool echo() const { return echo_; }

  ~Profiler();
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

private:
  friend class ProfileScope;

  /// Live accumulation node. Children are keyed by the zone's string
  /// pointer (fast path); snapshot() coalesces by content.
  struct Node {
    const char* name = "";
    Node* parent = nullptr;
    std::uint64_t calls = 0;
    std::int64_t sim_ns = 0;
    std::uint64_t wall_ticks = 0;  ///< converted to ns at snapshot time
    std::uint32_t session = 0;  ///< session roots only
    std::vector<std::unique_ptr<Node>> children;  ///< insertion order
  };

  [[nodiscard]] Node* open(const char* zone, std::uint32_t session);
  void close(Node* n);
  [[nodiscard]] std::int64_t sim_now_ns() const;
  [[nodiscard]] static ProfileNode snapshot_node(const Node& n, double ns_per_tick);

  bool enabled_ = false;
  bool echo_ = false;
  const sim::EventScheduler* clock_ = nullptr;
  std::vector<std::unique_ptr<Node>> roots_;  ///< session roots, insertion order
  Node* cursor_ = nullptr;                    ///< innermost open zone
  ProfileScope* top_scope_ = nullptr;
  std::uint64_t entered_ = 0;
};

/// RAII zone timer. Construction is a cheap branch when the thread's
/// current profiler is inactive; otherwise the scope opens a zone under
/// the innermost open scope (or under the session root when top-level)
/// and, on destruction, charges self time = elapsed - time spent in child
/// scopes.
class ProfileScope {
public:
  explicit ProfileScope(const char* zone, std::uint32_t session = 0) {
    Profiler& p = Profiler::current();
    if (p.active()) enter(p, zone, session);
  }
  ~ProfileScope() {
    if (node_ != nullptr) leave();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

private:
  void enter(Profiler& p, const char* zone, std::uint32_t session);
  void leave();

  Profiler* prof_ = nullptr;
  Profiler::Node* node_ = nullptr;
  ProfileScope* parent_ = nullptr;
  std::int64_t sim_start_ = 0;
  std::uint64_t wall_start_ = 0;  ///< detail::wall_ticks units
  std::int64_t child_sim_ = 0;
  std::uint64_t child_wall_ = 0;  ///< detail::wall_ticks units
};

/// RAII install of a profiler as the calling thread's current one (shard
/// isolation, mirroring ScopedTraceRecorder).
class ScopedProfiler {
public:
  explicit ScopedProfiler(Profiler& p) : prev_(Profiler::install(&p)) {}
  ~ScopedProfiler() { Profiler::install(prev_); }
  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

private:
  Profiler* prev_;
};

// Zone macros: the one-line instrumentation hook every mechanism handler
// uses. UNITES_PROF opens an anonymous scope inheriting the enclosing
// session; UNITES_PROF_S pins the session id (use at session entry points
// like transport send/rx so nested mechanism zones group under it).
#define UNITES_PROF_CAT2(a, b) a##b
#define UNITES_PROF_CAT(a, b) UNITES_PROF_CAT2(a, b)
#define UNITES_PROF(zone) \
  ::adaptive::unites::ProfileScope UNITES_PROF_CAT(unites_prof_scope_, __LINE__)(zone)
#define UNITES_PROF_S(zone, session) \
  ::adaptive::unites::ProfileScope UNITES_PROF_CAT(unites_prof_scope_, __LINE__)(zone, session)

}  // namespace adaptive::unites
