#include "unites/regression.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace adaptive::unites {

namespace {

/// Minimal recursive-descent JSON reader over the exporters' own output.
class JsonReader {
public:
  JsonReader(std::string_view text, BenchReportData& out) : s_(text), out_(out) {}

  void run() {
    skip_ws();
    value("");
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
  }

private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("bench report parse error at byte " + std::to_string(pos_) + ": " +
                             what);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        c = next();
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Preserve the escape verbatim; report keys never use it.
            out += "\\u";
            for (int i = 0; i < 4; ++i) out += next();
            break;
          default: out += c; break;
        }
        continue;
      }
      out += c;
    }
  }

  void value(const std::string& path) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      object(path);
    } else if (c == '[') {
      array();
    } else if (c == '"') {
      const std::string s = string_lit();
      if (path == "bench") out_.bench = s;
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number(path);
    }
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (next() != *p) fail("bad literal");
    }
  }

  void number(const std::string& path) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                                s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    const std::string text(s_.substr(start, pos_ - start));
    try {
      const double v = std::stod(text);
      if (!path.empty()) out_.values[path] = v;
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  void object(const std::string& path) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_lit();
      skip_ws();
      expect(':');
      value(path.empty() ? key : path + "." + key);
      skip_ws();
      const char c = next();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  void array() {
    // Arrays (distribution buckets, trace samples) carry no regression
    // scalars; walk them for syntax but record nothing.
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      value("");
      skip_ws();
      const char c = next();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  BenchReportData& out_;
};

bool matches(std::string_view pattern, std::string_view key) {
  if (!pattern.empty() && pattern.back() == '*') {
    const auto prefix = pattern.substr(0, pattern.size() - 1);
    return key.substr(0, prefix.size()) == prefix;
  }
  return pattern == key;
}

}  // namespace

std::map<std::string, double> BenchReportData::section(std::string_view name) const {
  std::map<std::string, double> out;
  const std::string prefix = std::string(name) + ".";
  for (const auto& [k, v] : values) {
    if (k.size() > prefix.size() && k.compare(0, prefix.size(), prefix) == 0) {
      out.emplace(k.substr(prefix.size()), v);
    }
  }
  return out;
}

BenchReportData parse_bench_report(std::string_view json) {
  BenchReportData out;
  JsonReader(json, out).run();
  return out;
}

double ToleranceSpec::tol_for(std::string_view key) const {
  double best = default_rel_tol;
  std::size_t best_len = 0;
  bool found = false;
  for (const auto& [pattern, tol] : rules) {
    if (matches(pattern, key) && (!found || pattern.size() >= best_len)) {
      best = tol;
      best_len = pattern.size();
      found = true;
    }
  }
  return best;
}

ToleranceSpec ToleranceSpec::parse(std::string_view text, double default_rel_tol) {
  ToleranceSpec spec;
  spec.default_rel_tol = default_rel_tol;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    // Trim and split "<pattern> <tol>".
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    const auto space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      throw std::runtime_error("tolerance rule needs '<key> <tol>': " + std::string(line));
    }
    const std::string pattern(line.substr(0, space));
    const std::string tol_text(line.substr(line.find_first_not_of(" \t", space)));
    try {
      spec.rules.emplace_back(pattern, std::stod(tol_text));
    } catch (const std::exception&) {
      throw std::runtime_error("bad tolerance value: " + tol_text);
    }
  }
  return spec;
}

DiffResult diff_reports(const BenchReportData& baseline, const BenchReportData& candidate,
                        const ToleranceSpec& tol, std::string_view prefix) {
  DiffResult out;
  for (const auto& [key, base] : baseline.values) {
    if (!prefix.empty() && key.compare(0, prefix.size(), prefix) != 0) continue;
    const double t = tol.tol_for(key);
    if (t < 0) continue;  // explicitly ignored
    DiffEntry e;
    e.key = key;
    e.baseline = base;
    e.tol = t;
    const auto it = candidate.values.find(key);
    if (it == candidate.values.end()) {
      e.missing = true;
      e.ok = false;
    } else {
      e.candidate = it->second;
      const double delta = std::fabs(e.candidate - base);
      if (delta == 0.0) {
        e.rel_delta = 0.0;
      } else if (base == 0.0) {
        e.rel_delta = std::numeric_limits<double>::infinity();
      } else {
        e.rel_delta = delta / std::fabs(base);
      }
      e.ok = e.rel_delta <= t;
    }
    if (!e.ok) out.ok = false;
    out.entries.push_back(std::move(e));
  }
  for (const auto& [key, v] : candidate.values) {
    if (!prefix.empty() && key.compare(0, prefix.size(), prefix) != 0) continue;
    if (baseline.values.find(key) == baseline.values.end()) out.added.push_back(key);
  }
  return out;
}

std::string render_diff(const DiffResult& d) {
  std::string out;
  char buf[256];
  for (const auto& e : d.entries) {
    if (e.missing) {
      std::snprintf(buf, sizeof buf, "FAIL %-48s baseline=%.6g MISSING in candidate\n",
                    e.key.c_str(), e.baseline);
    } else {
      std::snprintf(buf, sizeof buf, "%s %-48s baseline=%.6g candidate=%.6g delta=%.2f%% tol=%.2f%%\n",
                    e.ok ? "ok  " : "FAIL", e.key.c_str(), e.baseline, e.candidate,
                    e.rel_delta * 100.0, e.tol * 100.0);
    }
    out += buf;
  }
  for (const auto& k : d.added) {
    out += "new  " + k + " (absent from baseline)\n";
  }
  return out;
}

}  // namespace adaptive::unites
