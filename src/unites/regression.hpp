// Perf-regression tracking (DESIGN §12): compare two bench reports.
//
// Every bench harness writes a BENCH_<name>.json with "scalars" (may
// include wall-clock figures) and "trajectory" (virtual-time-derived,
// deterministic — the north-star metrics ROADMAP tracks). bench_diff
// parses a committed baseline and a fresh candidate, compares each
// numeric key against a per-scalar relative-tolerance band, and fails
// when anything drifts out of band or disappears. CI runs it against
// baselines under bench/baselines/, so a regression in bytes/session or
// copies/message turns red before it merges.
//
// The parser is a deliberately minimal recursive-descent JSON reader —
// just enough for the reports our own exporters emit (objects, arrays,
// strings, numbers, bools, null); it flattens numeric leaves into
// dotted keys ("trajectory.mem.bytes_per_session").
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace adaptive::unites {

/// Flattened numeric view of one BENCH_<name>.json report.
struct BenchReportData {
  std::string bench;                        ///< the report's "bench" field
  std::map<std::string, double> values;     ///< dotted-key numeric leaves
  /// Keys under `section` ("scalars", "trajectory", ...), names relative
  /// to the section.
  [[nodiscard]] std::map<std::string, double> section(std::string_view name) const;
};

/// Parse a report; throws std::runtime_error on malformed JSON.
[[nodiscard]] BenchReportData parse_bench_report(std::string_view json);

/// Per-scalar tolerance bands. Text format, one rule per line:
///   <key-or-prefix*> <relative-tolerance>
/// '#' starts a comment. The most specific matching rule wins (longest
/// pattern); keys with no rule use default_rel_tol. A tolerance of -1
/// means "ignore this key entirely".
struct ToleranceSpec {
  double default_rel_tol = 0.05;
  std::vector<std::pair<std::string, double>> rules;

  [[nodiscard]] double tol_for(std::string_view key) const;
  [[nodiscard]] static ToleranceSpec parse(std::string_view text, double default_rel_tol);
};

struct DiffEntry {
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  ///< |c-b| / |b| (infinity when b == 0 != c)
  double tol = 0.0;
  bool missing = false;  ///< key present in baseline, absent in candidate
  bool ok = true;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< baseline-key order
  std::vector<std::string> added;  ///< candidate keys absent from baseline (informational)
  bool ok = true;
};

/// Compare every baseline key in `prefix` (e.g. "trajectory."; empty =
/// all numeric keys) against the candidate.
[[nodiscard]] DiffResult diff_reports(const BenchReportData& baseline,
                                      const BenchReportData& candidate,
                                      const ToleranceSpec& tol, std::string_view prefix);

/// Human-readable table of the diff, one line per entry, out-of-band
/// lines marked "FAIL".
[[nodiscard]] std::string render_diff(const DiffResult& d);

}  // namespace adaptive::unites
