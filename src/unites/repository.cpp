#include "unites/repository.hpp"

#include <algorithm>

namespace adaptive::unites {

void MetricRepository::record(const MetricKey& key, sim::SimTime when, double value) {
  record(key, when, value, classify_metric(key.name));
}

void MetricRepository::record(const MetricKey& key, sim::SimTime when, double value,
                              MetricClass cls) {
  classes_.try_emplace(key, cls);  // first explicit choice wins
  auto& stored = data_[key];
  stored.samples.push_back(Sample{when, value});
  if (stored.samples.size() > cap_) {
    // Age out the oldest half in one move (amortized O(1) per record).
    stored.samples.erase(stored.samples.begin(),
                         stored.samples.begin() + static_cast<std::ptrdiff_t>(cap_ / 2));
  }
  auto& s = summaries_[key];
  if (s.count == 0) {
    s.min = s.max = value;
  } else {
    s.min = std::min(s.min, value);
    s.max = std::max(s.max, value);
  }
  ++s.count;
  s.sum += value;
  s.last = value;
  histograms_[key].add(value);
  ++total_samples_;
}

void MetricRepository::merge(const MetricRepository& other) {
  for (const auto& [key, stored] : other.data_) {
    auto& mine = data_[key].samples;
    mine.insert(mine.end(), stored.samples.begin(), stored.samples.end());
    // Same aging rule as record(): drop the oldest half past the cap.
    const std::size_t drop = cap_ / 2 == 0 ? 1 : cap_ / 2;
    while (mine.size() > cap_) {
      mine.erase(mine.begin(), mine.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }
  for (const auto& [key, theirs] : other.summaries_) {
    if (theirs.count == 0) continue;
    auto& s = summaries_[key];
    if (s.count == 0) {
      s = theirs;
      continue;
    }
    s.min = std::min(s.min, theirs.min);
    s.max = std::max(s.max, theirs.max);
    s.count += theirs.count;
    s.sum += theirs.sum;
    s.last = theirs.last;
  }
  for (const auto& [key, h] : other.histograms_) histograms_[key].merge(h);
  // Carry the metric class: without this a merged repository forgets any
  // explicit classification and exporters fall back to name heuristics.
  for (const auto& [key, cls] : other.classes_) classes_.try_emplace(key, cls);
  total_samples_ += other.total_samples_;
}

MetricClass MetricRepository::metric_class(const MetricKey& key) const {
  auto it = classes_.find(key);
  return it == classes_.end() ? classify_metric(key.name) : it->second;
}

const Series* MetricRepository::series(const MetricKey& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? nullptr : &it->second.samples;
}

std::optional<SeriesSummary> MetricRepository::summary(const MetricKey& key) const {
  auto it = summaries_.find(key);
  if (it == summaries_.end()) return std::nullopt;
  return it->second;
}

const Histogram* MetricRepository::histogram(const MetricKey& key) const {
  auto it = histograms_.find(key);
  return it == histograms_.end() ? nullptr : &it->second;
}

Histogram MetricRepository::systemwide_histogram(std::string_view name) const {
  Histogram merged;
  for (const auto& [k, h] : histograms_) {
    if (k.name == name) merged.merge(h);
  }
  return merged;
}

std::vector<MetricKey> MetricRepository::keys() const {
  std::vector<MetricKey> out;
  out.reserve(data_.size());
  for (const auto& [k, _] : data_) out.push_back(k);
  return out;
}

std::vector<MetricKey> MetricRepository::keys_for_host(net::NodeId host) const {
  std::vector<MetricKey> out;
  for (const auto& [k, _] : data_) {
    if (k.host == host) out.push_back(k);
  }
  return out;
}

std::vector<MetricKey> MetricRepository::keys_for_connection(net::NodeId host,
                                                             std::uint32_t connection) const {
  std::vector<MetricKey> out;
  for (const auto& [k, _] : data_) {
    if (k.host == host && k.connection == connection) out.push_back(k);
  }
  return out;
}

double MetricRepository::systemwide_sum(std::string_view name) const {
  double sum = 0.0;
  for (const auto& [k, s] : summaries_) {
    if (k.name == name) sum += s.sum;
  }
  return sum;
}

}  // namespace adaptive::unites
