// UNITES Metric Repository (Figure 6): the database collected metric
// information lands in.
//
// "A repository is necessary when many active connections are instrumented
// and monitored, since too much data is generated to collect and process
// in real-time" — each series is bounded, and aggregate counters survive
// even after raw samples age out. Queries come in the three presentations
// the paper lists: systemwide, per-host, and per-connection.
#pragma once

#include "unites/histogram.hpp"
#include "unites/metric.hpp"

#include <deque>
#include <map>
#include <optional>

namespace adaptive::unites {

struct SeriesSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
};

class MetricRepository {
public:
  explicit MetricRepository(std::size_t max_samples_per_series = 65'536)
      : cap_(max_samples_per_series) {}

  /// Record one sample. The key's metric class defaults to
  /// classify_metric(key.name); pass `cls` to pin it explicitly (free-form
  /// metric names the classifier has never heard of). The class sticks to
  /// the key: later records and merges keep the first explicit choice.
  void record(const MetricKey& key, sim::SimTime when, double value);
  void record(const MetricKey& key, sim::SimTime when, double value, MetricClass cls);

  /// The stored class for `key` (survives merge); falls back to
  /// classify_metric for keys recorded before class storage existed.
  [[nodiscard]] MetricClass metric_class(const MetricKey& key) const;

  /// Fold another repository into this one: per-key series are appended
  /// (then aged to this repository's cap), summaries combine (count/sum/
  /// min/max; `last` takes `other`'s), histograms merge bucket-by-bucket.
  /// Merging shard repositories in a fixed canonical order yields
  /// byte-identical contents regardless of how many threads produced them
  /// — the sharded scenario engine's determinism contract.
  void merge(const MetricRepository& other);

  [[nodiscard]] const Series* series(const MetricKey& key) const;
  [[nodiscard]] std::optional<SeriesSummary> summary(const MetricKey& key) const;

  /// Log-bucketed distribution of every value ever recorded for the key —
  /// unlike the raw series, it never ages out, so percentiles stay exact
  /// over the whole run. Nullptr if the key was never recorded.
  [[nodiscard]] const Histogram* histogram(const MetricKey& key) const;

  /// Merged distribution of `name` across all hosts and connections (the
  /// systemwide presentation as percentiles).
  [[nodiscard]] Histogram systemwide_histogram(std::string_view name) const;

  /// All keys, optionally filtered to one host and/or one connection.
  [[nodiscard]] std::vector<MetricKey> keys() const;
  [[nodiscard]] std::vector<MetricKey> keys_for_host(net::NodeId host) const;
  [[nodiscard]] std::vector<MetricKey> keys_for_connection(net::NodeId host,
                                                           std::uint32_t connection) const;

  /// Systemwide total of a counter-style metric across hosts/connections.
  [[nodiscard]] double systemwide_sum(std::string_view name) const;

  [[nodiscard]] std::size_t series_count() const { return data_.size(); }
  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }

  void clear() {
    data_.clear();
    summaries_.clear();
    histograms_.clear();
    classes_.clear();
    total_samples_ = 0;
  }

private:
  struct Stored {
    Series samples;
  };
  std::size_t cap_;
  std::map<MetricKey, Stored> data_;
  std::map<MetricKey, SeriesSummary> summaries_;
  std::map<MetricKey, Histogram> histograms_;
  std::map<MetricKey, MetricClass> classes_;
  std::uint64_t total_samples_ = 0;
};

}  // namespace adaptive::unites
