#include "unites/resource.hpp"

#include "os/host.hpp"
#include "tko/transport.hpp"

namespace adaptive::unites {

void ResourceSnapshot::capture_host(const os::Host& host,
                                    const tko::AdaptiveTransport* transport) {
  HostPoolResource hp;
  hp.host = host.node_id();
  hp.pool = host.buffers().stats();
  hosts.push_back(hp);
  if (transport == nullptr) return;
  transport->for_each_session([this, &host](const tko::TransportSession& s) {
    SessionResource sr;
    sr.host = host.node_id();
    sr.session = s.id();
    sr.live_bytes = s.live_bytes();
    sr.high_water_bytes = s.stats().live_bytes_high_water;
    sessions.push_back(sr);
  });
}

std::uint64_t ResourceSnapshot::total_copies() const {
  std::uint64_t n = 0;
  for (const auto& h : hosts) n += h.pool.copies;
  return n;
}

std::uint64_t ResourceSnapshot::total_copied_bytes() const {
  std::uint64_t n = 0;
  for (const auto& h : hosts) n += h.pool.copied_bytes;
  return n;
}

std::uint64_t ResourceSnapshot::total_allocations() const {
  std::uint64_t n = 0;
  for (const auto& h : hosts) n += h.pool.allocations;
  return n;
}

std::uint64_t ResourceSnapshot::total_allocated_bytes() const {
  std::uint64_t n = 0;
  for (const auto& h : hosts) n += h.pool.allocated_bytes;
  return n;
}

std::uint64_t ResourceSnapshot::pool_high_water_bytes() const {
  std::uint64_t n = 0;
  for (const auto& h : hosts) n += h.pool.high_water_bytes;
  return n;
}

std::uint64_t ResourceSnapshot::session_live_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.live_bytes;
  return n;
}

std::uint64_t ResourceSnapshot::session_high_water_bytes() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions) n += s.high_water_bytes;
  return n;
}

void ResourceSnapshot::record_into(MetricRepository& repo) const {
  const auto rec = [&](net::NodeId host, std::uint32_t conn, const char* name,
                       std::uint64_t v) {
    repo.record(MetricKey{host, conn, name}, when, static_cast<double>(v),
                MetricClass::kResource);
  };
  for (const auto& h : hosts) {
    rec(h.host, 0, metrics::kPoolAllocations, h.pool.allocations);
    rec(h.host, 0, metrics::kPoolAllocatedBytes, h.pool.allocated_bytes);
    rec(h.host, 0, metrics::kPoolFrees, h.pool.frees);
    rec(h.host, 0, metrics::kPoolLiveBytes, h.pool.live_bytes);
    rec(h.host, 0, metrics::kPoolHighWaterBytes, h.pool.high_water_bytes);
    rec(h.host, 0, metrics::kPoolCopiedBytes, h.pool.copied_bytes);
    rec(h.host, 0, metrics::kPoolWastedBytes, h.pool.wasted_bytes);
    rec(h.host, 0, metrics::kCopies, h.pool.copies);
  }
  for (const auto& s : sessions) {
    rec(s.host, s.session, metrics::kSessionLiveBytes, s.live_bytes);
    rec(s.host, s.session, metrics::kSessionHighWaterBytes, s.high_water_bytes);
  }
}

std::string ResourceSnapshot::to_json() const {
  std::string out = "{\"when_ns\":" + std::to_string(when.ns()) + ",\"hosts\":[";
  bool first = true;
  for (const auto& h : hosts) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":" + std::to_string(h.host) +
           ",\"allocations\":" + std::to_string(h.pool.allocations) +
           ",\"allocated_bytes\":" + std::to_string(h.pool.allocated_bytes) +
           ",\"frees\":" + std::to_string(h.pool.frees) +
           ",\"freed_bytes\":" + std::to_string(h.pool.freed_bytes) +
           ",\"live_bytes\":" + std::to_string(h.pool.live_bytes) +
           ",\"high_water_bytes\":" + std::to_string(h.pool.high_water_bytes) +
           ",\"copies\":" + std::to_string(h.pool.copies) +
           ",\"copied_bytes\":" + std::to_string(h.pool.copied_bytes) +
           ",\"wasted_bytes\":" + std::to_string(h.pool.wasted_bytes) + "}";
  }
  out += "],\"sessions\":[";
  first = true;
  for (const auto& s : sessions) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":" + std::to_string(s.host) + ",\"session\":" + std::to_string(s.session) +
           ",\"live_bytes\":" + std::to_string(s.live_bytes) +
           ",\"high_water_bytes\":" + std::to_string(s.high_water_bytes) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace adaptive::unites
