// UNITES resource plane (DESIGN §12): copy/alloc/memory accounting.
//
// Section 2 of the paper argues that memory — copying costs and
// per-connection buffer state — is where transport systems lose their
// performance on high-speed networks. The resource plane makes that
// claim measurable: a ResourceSnapshot captures every host buffer pool's
// allocation/free/copy counters and every live session's pinned-byte
// gauge at one instant of virtual time, records them into the metric
// repository under MetricClass::kResource, and serializes to JSON for
// flight-recorder bundles. The trajectory scalars the benchmarks gate on
// (mem.bytes_per_session, os.copies_per_msg) are derived from these
// snapshots.
#pragma once

#include "os/buffer_pool.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "unites/repository.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace adaptive::os {
class Host;
}

namespace adaptive::tko {
class AdaptiveTransport;
}

namespace adaptive::unites {

/// One host buffer pool's counters at snapshot time.
struct HostPoolResource {
  net::NodeId host = 0;
  os::BufferPoolStats pool;
};

/// One transport session's pinned payload bytes at snapshot time.
struct SessionResource {
  net::NodeId host = 0;
  std::uint32_t session = 0;
  std::uint64_t live_bytes = 0;        ///< gauge at snapshot time
  std::uint64_t high_water_bytes = 0;  ///< peak over the session's life
};

struct ResourceSnapshot {
  sim::SimTime when = sim::SimTime::zero();
  std::vector<HostPoolResource> hosts;
  std::vector<SessionResource> sessions;

  /// Fold one host (pool counters + every live session of `transport`,
  /// which may be null for hosts without a transport) into the snapshot.
  void capture_host(const os::Host& host, const tko::AdaptiveTransport* transport);

  // ---- systemwide aggregates -------------------------------------------
  [[nodiscard]] std::uint64_t total_copies() const;
  [[nodiscard]] std::uint64_t total_copied_bytes() const;
  [[nodiscard]] std::uint64_t total_allocations() const;
  [[nodiscard]] std::uint64_t total_allocated_bytes() const;
  [[nodiscard]] std::uint64_t pool_high_water_bytes() const;     ///< sum of per-host peaks
  [[nodiscard]] std::uint64_t session_live_bytes() const;        ///< sum of session gauges
  [[nodiscard]] std::uint64_t session_high_water_bytes() const;  ///< sum of session peaks

  /// Record every figure as MetricClass::kResource samples at `when`:
  /// per-host mem.pool_* (connection 0) and per-session mem.session_*.
  void record_into(MetricRepository& repo) const;

  /// Compact JSON object for flight-recorder bundles and reports.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace adaptive::unites
