#include "unites/sampler.hpp"

#include "unites/export.hpp"

#include <cstdio>

namespace adaptive::unites {

namespace {

// Shortest round-trippable rendering, matching the other exporters.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

Sampler::Sampler(os::TimerFacility& timers, Config cfg, CaptureFn capture)
    : cfg_(cfg), capture_(std::move(capture)) {
  timer_ = std::make_unique<tko::Event>(timers, [this] { sample(); });
  if (cfg_.period > sim::SimTime::zero()) timer_->schedule_periodic(cfg_.period);
}

Sampler::~Sampler() { cancel(); }

void Sampler::cancel() { timer_->cancel(); }

void Sampler::sample_now() { sample(); }

void Sampler::sample() {
  if (!capture_) return;
  const ResourceSnapshot snap = capture_();
  ++samples_;
  const auto point = [&](net::NodeId host, std::uint32_t conn, const char* name,
                         std::uint64_t v) {
    TimelinePoint p;
    p.when = snap.when;
    p.host = host;
    p.connection = conn;
    p.name = name;
    p.value = static_cast<double>(v);
    timeline_.push_back(std::move(p));
  };
  for (const auto& h : snap.hosts) {
    point(h.host, 0, metrics::kPoolLiveBytes, h.pool.live_bytes);
    point(h.host, 0, metrics::kPoolHighWaterBytes, h.pool.high_water_bytes);
    point(h.host, 0, metrics::kPoolAllocatedBytes, h.pool.allocated_bytes);
    point(h.host, 0, metrics::kPoolCopiedBytes, h.pool.copied_bytes);
    point(h.host, 0, metrics::kCopies, h.pool.copies);
  }
  if (cfg_.per_session) {
    for (const auto& s : snap.sessions) {
      point(s.host, s.session, metrics::kSessionLiveBytes, s.live_bytes);
    }
  }
  if (gauges_) gauges_(snap.when, timeline_);
}

void write_timeline_jsonl(std::ostream& out, const Timeline& tl) {
  for (const auto& p : tl) {
    out << "{\"t\":" << p.when.ns() << ",\"seed\":" << p.seed << ",\"host\":" << p.host
        << ",\"connection\":" << p.connection << ",\"name\":\"" << json_escape(p.name)
        << "\",\"value\":" << num(p.value) << "}\n";
  }
}

void write_timeline_chrome(std::ostream& out, const Timeline& tl) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& p : tl) {
    if (!first) out << ",";
    first = false;
    const double ts_us = static_cast<double>(p.when.ns()) / 1e3;
    out << "{\"name\":\"" << json_escape(p.name) << "\",\"cat\":\"resource\",\"ph\":\"C\""
        << ",\"pid\":" << p.host << ",\"tid\":" << p.connection << ",\"ts\":" << num(ts_us)
        << ",\"args\":{\"value\":" << num(p.value) << "}}";
  }
  out << "]}\n";
}

}  // namespace adaptive::unites
