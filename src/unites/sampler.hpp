// UNITES time-series sampler (DESIGN §12): periodic resource timelines.
//
// The metric repository keeps per-key series, but the resource plane's
// interesting signals are *gauges* — pool live bytes, per-session pinned
// bytes — whose shape over time is the whole story (a leak is a gauge
// that never comes back down; a burst is a spike the end-of-run summary
// averages away). The Sampler snapshots a ResourceSnapshot at a fixed
// virtual-time period and flattens it into a Timeline of (when, host,
// connection, name, value) points.
//
// Determinism contract: sampling is driven by the shard's own virtual
// clock, so a shard's timeline is a pure function of (scenario, seed).
// Sweeps stamp each point with the shard's seed and merge timelines in
// canonical seed order — jobs=1 and jobs=8 produce byte-identical
// exports. Exporters: JSONL (one point per line) and Chrome trace
// counter tracks ("ph":"C"), loadable next to the event trace.
#pragma once

#include "sim/time.hpp"
#include "tko/event.hpp"
#include "unites/resource.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace adaptive::unites {

struct TimelinePoint {
  sim::SimTime when;
  std::uint64_t seed = 0;  ///< stamped by the sweep at merge time
  net::NodeId host = 0;
  std::uint32_t connection = 0;  ///< 0 = host-wide
  std::string name;
  double value = 0.0;
};

using Timeline = std::vector<TimelinePoint>;

class Sampler {
public:
  struct Config {
    sim::SimTime period = sim::SimTime::milliseconds(100);
    bool per_session = true;  ///< include mem.session_live_bytes points
  };

  /// `capture` produces the instantaneous resource view; called once per
  /// period on the virtual clock that owns `timers`.
  using CaptureFn = std::function<ResourceSnapshot()>;

  /// Extra gauge families (e.g. the conformance plane's qos.* tracks):
  /// called after each resource capture to append additional points for
  /// the same instant. Appended order must be deterministic.
  using GaugeFn = std::function<void(sim::SimTime when, Timeline& out)>;
  void set_gauge_capture(GaugeFn fn) { gauges_ = std::move(fn); }

  Sampler(os::TimerFacility& timers, Config cfg, CaptureFn capture);
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Stop sampling. Idempotent; the collected timeline stays readable.
  void cancel();

  /// Take one sample now (outside the periodic schedule) — used by the
  /// harvest path so even a zero-period-elapsed run has a final point.
  void sample_now();

  [[nodiscard]] const Timeline& timeline() const { return timeline_; }
  [[nodiscard]] Timeline take_timeline() { return std::move(timeline_); }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }

private:
  void sample();

  Config cfg_;
  CaptureFn capture_;
  GaugeFn gauges_;
  std::unique_ptr<tko::Event> timer_;
  Timeline timeline_;
  std::uint64_t samples_ = 0;
};

/// One JSON object per point:
/// {"t":<ns>,"seed":S,"host":H,"connection":C,"name":"...","value":V}
void write_timeline_jsonl(std::ostream& out, const Timeline& tl);

/// Chrome trace counter tracks ("ph":"C"), one counter per metric name,
/// pid = host, tid = connection. Loads in chrome://tracing / Perfetto
/// alongside the event trace.
void write_timeline_chrome(std::ostream& out, const Timeline& tl);

}  // namespace adaptive::unites
