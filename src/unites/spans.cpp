#include "unites/spans.hpp"

#include "unites/export.hpp"
#include "unites/metric.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

namespace adaptive::unites {

std::vector<MessageSpan> assemble_spans(const std::vector<TraceEvent>& events) {
  std::map<std::uint32_t, MessageSpan> by_unit;
  // Per-unit set of sequence numbers already seen on the wire: a repeated
  // (unit, seq) emission is a retransmission.
  std::map<std::uint32_t, std::set<std::uint32_t>> txed;

  auto span_of = [&](std::uint32_t unit) -> MessageSpan& {
    auto [it, fresh] = by_unit.try_emplace(unit);
    if (fresh) it->second.unit = unit;
    return it->second;
  };

  for (const auto& e : events) {
    if (std::strcmp(e.name, lifecycle::kSubmit) == 0) {
      MessageSpan& s = span_of(static_cast<std::uint32_t>(e.value));
      s.submit_ns = e.when.ns();
      s.session = e.session;
      s.src = e.node;
    } else if (std::strcmp(e.name, lifecycle::kEnqueue) == 0) {
      std::uint32_t unit = 0, seq = 0;
      unpack_unit_seq(e.value, unit, seq);
      MessageSpan& s = span_of(unit);
      if (s.enqueue_ns < 0) s.enqueue_ns = e.when.ns();
    } else if (std::strcmp(e.name, lifecycle::kTx) == 0) {
      std::uint32_t unit = 0, seq = 0;
      unpack_unit_seq(e.value, unit, seq);
      MessageSpan& s = span_of(unit);
      const std::int64_t t = e.when.ns();
      if (s.first_tx_ns < 0) s.first_tx_ns = t;
      if (t > s.last_tx_ns) s.last_tx_ns = t;
      if (txed[unit].insert(seq).second) {
        ++s.segments;
      } else {
        ++s.retx;
      }
    } else if (std::strcmp(e.name, "app.deliver") == 0) {
      // Existing sink event: session field carries the unit id (the
      // lifecycle id does not cross the wire; the UnitHeader does).
      MessageSpan& s = span_of(e.session);
      s.deliver_ns = e.when.ns();
    } else if (std::strcmp(e.name, "app.playout") == 0) {
      MessageSpan& s = span_of(e.session);
      s.playout_ns = e.when.ns();
    }
  }

  std::vector<MessageSpan> out;
  out.reserve(by_unit.size());
  for (auto& [unit, s] : by_unit) {
    // A span with only receiver-side milestones (trace ring wrapped past
    // the submit) still reports what it saw.
    out.push_back(std::move(s));
  }
  return out;
}

void record_span_breakdown(const std::vector<MessageSpan>& spans, MetricRepository& repo) {
  for (const auto& s : spans) {
    if (s.open() || s.submit_ns < 0 || s.first_tx_ns < 0) continue;
    const MetricKey queue{s.src, s.session, metrics::kMsgQueueNs};
    const MetricKey tx{s.src, s.session, metrics::kMsgTxNs};
    const MetricKey retx{s.src, s.session, metrics::kMsgRetxNs};
    const sim::SimTime when(s.deliver_ns);
    repo.record(queue, when, static_cast<double>(s.queue_ns()), MetricClass::kWhitebox);
    repo.record(tx, when, static_cast<double>(s.tx_ns()), MetricClass::kWhitebox);
    repo.record(retx, when, static_cast<double>(s.retx_ns()), MetricClass::kWhitebox);
    if (s.playout_ns >= 0) {
      const MetricKey hold{s.src, s.session, metrics::kMsgPlayoutHoldNs};
      repo.record(hold, sim::SimTime(s.playout_ns), static_cast<double>(s.playout_hold_ns()),
                  MetricClass::kWhitebox);
    }
  }
}

namespace {
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string async_id(const MessageSpan& s) {
  std::string out = "s";
  out += std::to_string(s.seed);
  out += ".u";
  out += std::to_string(s.unit);
  return out;
}

void async_event(std::ostream& out, bool& first, const char* ph, const MessageSpan& s,
                 std::int64_t t_ns, const char* name) {
  if (t_ns < 0) return;
  if (!first) out << ",";
  first = false;
  out << "{\"ph\":\"" << ph << "\",\"cat\":\"msg\",\"id\":\"" << async_id(s) << "\",\"name\":\""
      << name << "\",\"pid\":" << s.src << ",\"tid\":" << s.session
      << ",\"ts\":" << num(static_cast<double>(t_ns) / 1e3);
  if (ph[0] == 'n') out << ",\"args\":{\"unit\":" << s.unit << ",\"retx\":" << s.retx << "}";
  out << "}";
}
}  // namespace

void write_spans_chrome(std::ostream& out, const std::vector<MessageSpan>& spans) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    const std::int64_t start = s.submit_ns >= 0 ? s.submit_ns : s.deliver_ns;
    async_event(out, first, "b", s, start, "msg");
    async_event(out, first, "n", s, s.enqueue_ns, "enqueue");
    async_event(out, first, "n", s, s.first_tx_ns, "tx");
    if (s.retx > 0) async_event(out, first, "n", s, s.last_tx_ns, "retx");
    async_event(out, first, "n", s, s.deliver_ns, "deliver");
    async_event(out, first, "n", s, s.playout_ns, "playout");
    // Open spans (undelivered messages) end at their last known milestone
    // so the track renders; the flight recorder lists them explicitly.
    std::int64_t end = s.playout_ns;
    if (end < 0) end = s.deliver_ns;
    if (end < 0) end = s.last_tx_ns;
    if (end < 0) end = s.enqueue_ns;
    if (end < 0) end = s.submit_ns;
    async_event(out, first, "e", s, end, "msg");
  }
  out << "]}\n";
}

std::string span_to_json(const MessageSpan& s) {
  std::string out = "{";
  out += "\"seed\":" + std::to_string(s.seed);
  out += ",\"unit\":" + std::to_string(s.unit);
  out += ",\"session\":" + std::to_string(s.session);
  out += ",\"src\":" + std::to_string(s.src);
  out += ",\"submit_ns\":" + std::to_string(s.submit_ns);
  out += ",\"enqueue_ns\":" + std::to_string(s.enqueue_ns);
  out += ",\"first_tx_ns\":" + std::to_string(s.first_tx_ns);
  out += ",\"last_tx_ns\":" + std::to_string(s.last_tx_ns);
  out += ",\"segments\":" + std::to_string(s.segments);
  out += ",\"retx\":" + std::to_string(s.retx);
  out += ",\"deliver_ns\":" + std::to_string(s.deliver_ns);
  out += ",\"playout_ns\":" + std::to_string(s.playout_ns);
  out += std::string(",\"open\":") + (s.open() ? "true" : "false");
  out += "}";
  return out;
}

}  // namespace adaptive::unites
