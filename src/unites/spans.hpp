// Causal message-lifecycle spans: stitch the flat UNITES trace stream back
// into one record per application message.
//
// Every message a SourceApp submits carries a lifecycle id (the unit id,
// threaded through tko::Message so segmentation and retransmission keep
// the association). The transport and reliability layers emit lifecycle
// milestones — msg.submit, msg.enqueue, msg.tx — on the sender, and the
// existing app.deliver / new app.playout events mark the receiver end.
// SpanAssembler folds a shard's trace into MessageSpans: submit →
// enqueue → first tx → (retx*) → deliver → playout, with a per-message
// latency breakdown (queueing vs transmission vs retransmission vs
// playout hold) that feeds whitebox MetricKeys.
//
// Determinism: spans derive only from virtual-time trace events, so a
// sweep's span list — and its Chrome async-event export — is byte-
// identical for any --jobs, like the trace stream itself.
#pragma once

#include "unites/repository.hpp"
#include "unites/trace.hpp"

#include <cstdint>
#include <ostream>
#include <vector>

namespace adaptive::unites {

// Lifecycle milestone event names (sender side). app.deliver/app.playout
// close spans on the receiver side.
namespace lifecycle {
inline constexpr const char* kSubmit = "msg.submit";    ///< value = unit id
inline constexpr const char* kEnqueue = "msg.enqueue";  ///< value = pack_unit_seq
inline constexpr const char* kTx = "msg.tx";            ///< value = pack_unit_seq
}  // namespace lifecycle

/// Pack (unit id, sequence number) into one trace-event double. Both are
/// 32-bit, so the product stays under 2^53 and the encoding is exact.
[[nodiscard]] constexpr double pack_unit_seq(std::uint32_t unit, std::uint32_t seq) {
  return static_cast<double>(unit) * 4294967296.0 + static_cast<double>(seq);
}
inline void unpack_unit_seq(double v, std::uint32_t& unit, std::uint32_t& seq) {
  const auto bits = static_cast<std::uint64_t>(v);
  unit = static_cast<std::uint32_t>(bits >> 32);
  seq = static_cast<std::uint32_t>(bits);
}

/// One application message's assembled lifecycle. Times are virtual
/// nanoseconds; -1 marks a milestone never observed.
struct MessageSpan {
  std::uint64_t seed = 0;  ///< filled by the sweep engine
  std::uint32_t unit = 0;  ///< SourceApp unit id (lifecycle id - 1)
  std::uint32_t session = 0;
  net::NodeId src = 0;
  std::int64_t submit_ns = -1;
  std::int64_t enqueue_ns = -1;   ///< first segment handed to reliability
  std::int64_t first_tx_ns = -1;  ///< first wire emission of any segment
  std::int64_t last_tx_ns = -1;   ///< last wire (re)emission
  std::uint32_t segments = 0;     ///< distinct sequence numbers observed
  std::uint32_t retx = 0;         ///< re-emissions beyond each segment's first
  std::int64_t deliver_ns = -1;   ///< app.deliver at the sink
  std::int64_t playout_ns = -1;   ///< app.playout (isochronous sinks only)

  [[nodiscard]] bool open() const { return deliver_ns < 0; }
  [[nodiscard]] std::int64_t queue_ns() const { return first_tx_ns - submit_ns; }
  [[nodiscard]] std::int64_t retx_ns() const { return last_tx_ns - first_tx_ns; }
  [[nodiscard]] std::int64_t tx_ns() const { return deliver_ns - last_tx_ns; }
  [[nodiscard]] std::int64_t playout_hold_ns() const { return playout_ns - deliver_ns; }
};

/// Fold one shard's trace stream (one seed) into spans, ordered by unit
/// id. Events from other subsystems are ignored.
[[nodiscard]] std::vector<MessageSpan> assemble_spans(const std::vector<TraceEvent>& events);

/// Record the per-message latency breakdown of every *delivered* span into
/// `repo` as whitebox metrics (msg.queue_ns / msg.tx_ns / msg.retx_ns /
/// msg.playout_hold_ns), keyed by the span's source host and session.
void record_span_breakdown(const std::vector<MessageSpan>& spans, MetricRepository& repo);

/// Chrome trace_event async spans ("b"/"n"/"e" phases): one async track
/// per message, id scoped by seed, with instant milestones for tx/deliver/
/// playout. Loadable in chrome://tracing / Perfetto alongside the flat
/// trace. Byte-deterministic for a deterministic span list.
void write_spans_chrome(std::ostream& out, const std::vector<MessageSpan>& spans);

/// One JSON object per span (diagnostics + flight-recorder bundles).
[[nodiscard]] std::string span_to_json(const MessageSpan& s);

}  // namespace adaptive::unites
