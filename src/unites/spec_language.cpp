#include "unites/spec_language.hpp"

#include "unites/analysis.hpp"
#include "unites/presentation.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace adaptive::unites {

namespace {

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return std::isspace(c) == 0; };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

bool known_stat(const std::string& s) {
  static const char* kStats[] = {"count", "sum",  "mean", "min", "max", "stddev",
                                 "p50",   "p95",  "p99",  "rate", "last"};
  return std::any_of(std::begin(kStats), std::end(kStats),
                     [&](const char* k) { return s == k; });
}

/// Parse "50ms" / "2s" / "100us" into a SimTime.
std::optional<sim::SimTime> parse_period(const std::string& token) {
  std::size_t i = 0;
  while (i < token.size() && (std::isdigit(static_cast<unsigned char>(token[i])) != 0)) ++i;
  if (i == 0) return std::nullopt;
  const long value = std::stol(token.substr(0, i));
  const std::string unit = token.substr(i);
  if (unit == "us") return sim::SimTime::microseconds(value);
  if (unit == "ms") return sim::SimTime::milliseconds(value);
  if (unit == "s") return sim::SimTime::seconds(static_cast<double>(value));
  return std::nullopt;
}

}  // namespace

std::optional<MetricSpecProgram> parse_metric_spec(std::string_view text,
                                                   std::vector<std::string>* errors) {
  MetricSpecProgram program;
  program.measurement.whitebox = false;  // until a collect statement appears
  bool ok = true;
  auto fail = [&](int line_no, const std::string& msg) {
    ok = false;
    if (errors != nullptr) {
      errors->push_back("line " + std::to_string(line_no) + ": " + msg);
    }
  };

  std::istringstream in{std::string(text)};
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto words = split_words(line);

    if (words[0] == "collect") {
      if (words.size() != 2 && !(words.size() == 4 && words[2] == "every")) {
        fail(line_no, "expected: collect <pattern> [every <period>]");
        continue;
      }
      program.measurement.whitebox = true;
      std::string pattern = words[1];
      if (pattern != "*") {
        // "pdu.*" -> prefix "pdu."; a bare name is itself a prefix.
        if (pattern.size() >= 2 && pattern.ends_with("*")) {
          pattern.pop_back();
        }
        program.measurement.filter.push_back(pattern);
      } else {
        program.measurement.filter.clear();  // '*' collects everything
      }
      if (words.size() == 4) {
        const auto period = parse_period(words[3]);
        if (!period.has_value()) {
          fail(line_no, "bad period '" + words[3] + "' (use e.g. 50ms, 2s)");
          continue;
        }
        program.measurement.sampling_period =
            std::min(program.measurement.sampling_period, *period);
      }
      continue;
    }

    if (words[0] == "report") {
      // report <stat>[, <stat>...] of <metric>
      auto of = std::find(words.begin(), words.end(), "of");
      if (of == words.end() || of + 1 == words.end()) {
        fail(line_no, "expected: report <stat>[,<stat>] of <metric>");
        continue;
      }
      ReportStatement stmt;
      std::string stats_blob;
      for (auto it = words.begin() + 1; it != of; ++it) stats_blob += *it;
      std::string stat;
      std::istringstream stats_in(stats_blob);
      bool stats_ok = true;
      while (std::getline(stats_in, stat, ',')) {
        stat = trim(stat);
        if (stat.empty()) continue;
        if (!known_stat(stat)) {
          fail(line_no, "unknown statistic '" + stat + "'");
          stats_ok = false;
          break;
        }
        stmt.stats.push_back(stat);
      }
      if (!stats_ok) continue;
      if (stmt.stats.empty()) {
        fail(line_no, "no statistics requested");
        continue;
      }
      stmt.metric = *(of + 1);
      program.reports.push_back(std::move(stmt));
      continue;
    }

    fail(line_no, "unknown statement '" + words[0] + "'");
  }
  if (!ok) return std::nullopt;
  return program;
}

std::string run_reports(const MetricSpecProgram& program, const MetricRepository& repo,
                        net::NodeId host, std::uint32_t connection) {
  TextTable table({"metric", "statistic", "value"});
  for (const auto& stmt : program.reports) {
    const MetricKey key{host, connection, stmt.metric};
    const Series* series = repo.series(key);
    if (series == nullptr) {
      table.add_row({stmt.metric, "-", "(no samples)"});
      continue;
    }
    const auto stats = analyze(*series);
    const auto summary = repo.summary(key);
    for (const auto& stat : stmt.stats) {
      double v = 0.0;
      bool have = true;
      if (stat == "count") v = static_cast<double>(stats.count);
      else if (stat == "sum") v = summary.has_value() ? summary->sum : 0.0;
      else if (stat == "mean") v = stats.mean;
      else if (stat == "min") v = stats.min;
      else if (stat == "max") v = stats.max;
      else if (stat == "stddev") v = stats.stddev;
      else if (stat == "p50") v = stats.p50;
      else if (stat == "p95") v = stats.p95;
      else if (stat == "p99") v = stats.p99;
      else if (stat == "last") v = summary.has_value() ? summary->last : 0.0;
      else if (stat == "rate") {
        const auto r = rate_per_second(*series);
        have = r.has_value();
        v = r.value_or(0.0);
      }
      table.add_row({stmt.metric, stat + (stat == "rate" ? "/s" : ""),
                     have ? format_si(v) : "(undefined)"});
    }
  }
  return table.render();
}

}  // namespace adaptive::unites
