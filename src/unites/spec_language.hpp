// UNITES metric-specification language (Section 4.3).
//
// "Metrics also may be requested using either a graphics-based or
// language-based interface" — this is the language-based one, in the
// spirit of Sjodin et al.'s measurement specification language. A spec is
// a line-oriented program:
//
//     # comments and blank lines are ignored
//     collect pdu.* every 50ms      # whitebox prefix filter + sampling period
//     collect connection.*
//     report mean, p95 of latency.ns
//     report sum of reliability.timeout
//     report rate of data.delivered_bytes
//
// `collect` statements compile into a MeasurementSpec (attachable to a
// session through the ACD's Transport Measurement Component); `report`
// statements run against the metric repository and render a table.
#pragma once

#include "unites/collector.hpp"
#include "unites/repository.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adaptive::unites {

struct ReportStatement {
  std::vector<std::string> stats;  ///< count|sum|mean|min|max|stddev|p50|p95|p99|rate|last
  std::string metric;
};

struct MetricSpecProgram {
  MeasurementSpec measurement;
  std::vector<ReportStatement> reports;
};

/// Parse a spec. On failure returns nullopt and, when `errors` is given,
/// one message per offending line ("line N: ...").
[[nodiscard]] std::optional<MetricSpecProgram> parse_metric_spec(
    std::string_view text, std::vector<std::string>* errors = nullptr);

/// Execute the program's report statements against `repo` for one
/// connection, rendering a fixed-width table (one row per report).
[[nodiscard]] std::string run_reports(const MetricSpecProgram& program,
                                      const MetricRepository& repo, net::NodeId host,
                                      std::uint32_t connection);

}  // namespace adaptive::unites
