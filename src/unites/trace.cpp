#include "unites/trace.hpp"

#include "sim/logging.hpp"

#include <cstdio>

namespace adaptive::unites {

const char* to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSim: return "sim";
    case TraceCategory::kNet: return "net";
    case TraceCategory::kTko: return "tko";
    case TraceCategory::kMantts: return "mantts";
    case TraceCategory::kApp: return "app";
    case TraceCategory::kConformance: return "conformance";
  }
  return "?";
}

namespace {
// Thread-scoped override installed by ScopedTraceRecorder; nullptr means
// "use the thread's default instance".
thread_local TraceRecorder* tls_recorder = nullptr;
}  // namespace

TraceRecorder& TraceRecorder::current() {
  if (tls_recorder != nullptr) return *tls_recorder;
  thread_local TraceRecorder thread_default;
  return thread_default;
}

TraceRecorder* TraceRecorder::install(TraceRecorder* r) {
  TraceRecorder* prev = tls_recorder;
  tls_recorder = r;
  return prev;
}

void TraceRecorder::enable(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_ < kDefaultCapacity ? capacity_ : kDefaultCapacity);
  head_ = 0;
  emitted_ = 0;
  enabled_ = true;
}

void TraceRecorder::disable() { enabled_ = false; }

void TraceRecorder::push(TraceEvent&& e) {
  if (echo_) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s %s node=%u conn=%u value=%g%s%s", to_string(e.category),
                  e.name, e.node, e.session, e.value, e.detail != nullptr ? " " : "",
                  e.detail != nullptr ? e.detail : "");
    sim::Logger::log(sim::LogLevel::kTrace, e.when, "unites.trace", buf);
  }
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  // head_ is the oldest retained event once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  emitted_ = 0;
}

}  // namespace adaptive::unites
