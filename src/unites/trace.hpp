// Structured event tracing: a bounded ring buffer of protocol events.
//
// Every subsystem (MANTTS negotiation, TKO synthesis and reliability, the
// network links) emits TraceEvents through the process-global recorder, so
// one packet's lifecycle — submit, synthesize, transmit, retransmit,
// deliver — is reconstructable from a single timeline. The recorder is off
// by default and each emit site costs exactly one predicted branch while
// disabled, so uninstrumented runs pay nothing. Snapshots export to the
// Chrome trace_event format (chrome://tracing, Perfetto) via
// unites/export.hpp.
//
// The simulation is single-threaded; the recorder is deliberately not
// thread-safe.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <vector>

namespace adaptive::unites {

enum class TraceCategory : std::uint8_t { kSim, kNet, kTko, kMantts, kApp };
[[nodiscard]] const char* to_string(TraceCategory c);

struct TraceEvent {
  sim::SimTime when;
  sim::SimTime duration = sim::SimTime::zero();  ///< > 0: span; else instant
  const char* name = "";                         ///< static-lifetime string
  const char* detail = nullptr;                  ///< optional static-lifetime annotation
  TraceCategory category = TraceCategory::kSim;
  net::NodeId node = 0;
  std::uint32_t session = 0;  ///< connection/session id; 0 = none
  double value = 0.0;         ///< optional numeric argument (seq, bytes, ...)
};

class TraceRecorder {
public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The process-global recorder every emit site uses.
  [[nodiscard]] static TraceRecorder& global();

  /// Start recording (clears any previous events). The ring holds the
  /// most recent `capacity` events; older ones are overwritten.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Point event. No-op (a single branch) while disabled.
  void instant(TraceCategory category, const char* name, sim::SimTime when,
               net::NodeId node = 0, std::uint32_t session = 0, double value = 0.0,
               const char* detail = nullptr) {
    if (!enabled_) return;
    push(TraceEvent{when, sim::SimTime::zero(), name, detail, category, node, session, value});
  }

  /// Duration event covering [start, start + duration).
  void span(TraceCategory category, const char* name, sim::SimTime start,
            sim::SimTime duration, net::NodeId node = 0, std::uint32_t session = 0,
            double value = 0.0, const char* detail = nullptr) {
    if (!enabled_) return;
    push(TraceEvent{start, duration, name, detail, category, node, session, value});
  }

  [[nodiscard]] std::size_t size() const { return ring_.size() < capacity_ ? ring_.size() : capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Events lost to ring wraparound since enable().
  [[nodiscard]] std::uint64_t dropped() const { return emitted_ - size(); }

  /// Retained events in emission order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Debug echo: mirror every recorded event through sim::Logger at
  /// kTrace level, so a captured log sink sees the trace stream too.
  void set_echo(bool on) { echo_ = on; }
  [[nodiscard]] bool echo() const { return echo_; }

private:
  void push(TraceEvent&& e);

  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t emitted_ = 0;
  bool enabled_ = false;
  bool echo_ = false;
};

/// Shorthand for the global recorder: unites::trace().instant(...).
[[nodiscard]] inline TraceRecorder& trace() { return TraceRecorder::global(); }

}  // namespace adaptive::unites
