// Structured event tracing: a bounded ring buffer of protocol events.
//
// Every subsystem (MANTTS negotiation, TKO synthesis and reliability, the
// network links) emits TraceEvents through the *current* recorder, so one
// packet's lifecycle — submit, synthesize, transmit, retransmit, deliver —
// is reconstructable from a single timeline. The recorder is off by
// default and each emit site costs exactly one predicted branch while
// disabled, so uninstrumented runs pay nothing. Snapshots export to the
// Chrome trace_event format (chrome://tracing, Perfetto) via
// unites/export.hpp.
//
// Thread model (DESIGN.md §9): there is no process-global recorder. Each
// thread has its own default recorder, and a shard worker can install a
// shard-local recorder with ScopedTraceRecorder, so N worlds running on N
// threads record into N disjoint rings with no locking and no
// cross-contamination. A single recorder instance is still deliberately
// not thread-safe — one recorder, one thread.
#pragma once

#include "net/packet.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <vector>

namespace adaptive::unites {

enum class TraceCategory : std::uint8_t { kSim, kNet, kTko, kMantts, kApp, kConformance };
[[nodiscard]] const char* to_string(TraceCategory c);

struct TraceEvent {
  sim::SimTime when;
  sim::SimTime duration = sim::SimTime::zero();  ///< > 0: span; else instant
  const char* name = "";                         ///< static-lifetime string
  const char* detail = nullptr;                  ///< optional static-lifetime annotation
  TraceCategory category = TraceCategory::kSim;
  net::NodeId node = 0;
  std::uint32_t session = 0;  ///< connection/session id; 0 = none
  double value = 0.0;         ///< optional numeric argument (seq, bytes, ...)
};

class TraceRecorder {
public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// The calling thread's current recorder: the innermost recorder
  /// installed with ScopedTraceRecorder, else the thread's own default
  /// instance. Every emit site records here.
  [[nodiscard]] static TraceRecorder& current();

  /// Install `r` (may be nullptr = revert to the thread default) as the
  /// calling thread's current recorder; returns the previous override.
  /// Prefer ScopedTraceRecorder.
  static TraceRecorder* install(TraceRecorder* r);

  /// Start recording (clears any previous events). The ring holds the
  /// most recent `capacity` events; older ones are overwritten.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Point event. No-op (a single branch) while disabled.
  void instant(TraceCategory category, const char* name, sim::SimTime when,
               net::NodeId node = 0, std::uint32_t session = 0, double value = 0.0,
               const char* detail = nullptr) {
    if (!enabled_) return;
    push(TraceEvent{when, sim::SimTime::zero(), name, detail, category, node, session, value});
  }

  /// Duration event covering [start, start + duration).
  void span(TraceCategory category, const char* name, sim::SimTime start,
            sim::SimTime duration, net::NodeId node = 0, std::uint32_t session = 0,
            double value = 0.0, const char* detail = nullptr) {
    if (!enabled_) return;
    push(TraceEvent{start, duration, name, detail, category, node, session, value});
  }

  [[nodiscard]] std::size_t size() const { return ring_.size() < capacity_ ? ring_.size() : capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Events lost to ring wraparound since enable().
  [[nodiscard]] std::uint64_t dropped() const { return emitted_ - size(); }

  /// Retained events in emission order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Debug echo: mirror every recorded event through sim::Logger at
  /// kTrace level, so a captured log sink sees the trace stream too.
  void set_echo(bool on) { echo_ = on; }
  [[nodiscard]] bool echo() const { return echo_; }

private:
  void push(TraceEvent&& e);

  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t emitted_ = 0;
  bool enabled_ = false;
  bool echo_ = false;
};

/// RAII install of a recorder as the calling thread's current one. The
/// shard runner wraps each shard in one of these so every world's events
/// land in that shard's private ring.
class ScopedTraceRecorder {
public:
  explicit ScopedTraceRecorder(TraceRecorder& r) : prev_(TraceRecorder::install(&r)) {}
  ~ScopedTraceRecorder() { TraceRecorder::install(prev_); }
  ScopedTraceRecorder(const ScopedTraceRecorder&) = delete;
  ScopedTraceRecorder& operator=(const ScopedTraceRecorder&) = delete;

private:
  TraceRecorder* prev_;
};

/// Shorthand for the current thread's recorder: unites::trace().instant(...).
[[nodiscard]] inline TraceRecorder& trace() { return TraceRecorder::current(); }

}  // namespace adaptive::unites
