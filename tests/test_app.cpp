// Tests for the application layer: traffic models, unit framing,
// source/sink apps, Table 1 workload factories, and the QoS evaluator.
#include "adaptive/world.hpp"
#include "net/background_traffic.hpp"
#include "app/application.hpp"
#include "app/playout.hpp"
#include "app/qos_evaluator.hpp"
#include "app/workloads.hpp"
#include "net/topologies.hpp"
#include "tko/sa/templates.hpp"

#include <gtest/gtest.h>

namespace adaptive::app {
namespace {

TEST(TrafficModels, CbrIsExactlyPeriodic) {
  CbrModel m(160, sim::SimTime::milliseconds(20));
  for (int i = 0; i < 5; ++i) {
    const auto u = m.next();
    ASSERT_TRUE(u.has_value());
    EXPECT_EQ(u->bytes, 160u);
    EXPECT_EQ(u->gap, sim::SimTime::milliseconds(20));
  }
}

TEST(TrafficModels, BulkExhausts) {
  BulkModel m(10'000, 4096);
  std::size_t total = 0;
  int units = 0;
  while (auto u = m.next()) {
    total += u->bytes;
    ++units;
    EXPECT_EQ(u->gap, sim::SimTime::zero());
  }
  EXPECT_EQ(total, 10'000u);
  EXPECT_EQ(units, 3);  // 4096 + 4096 + 1808
}

TEST(TrafficModels, PoissonMeanRate) {
  PoissonRequestModel m(100.0, 64, 128, 7);
  double total_gap = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto u = m.next();
    ASSERT_TRUE(u.has_value());
    total_gap += u->gap.sec();
    EXPECT_GE(u->bytes, 64u);
    EXPECT_LE(u->bytes, 128u);
  }
  EXPECT_NEAR(total_gap / n, 0.01, 0.001);  // mean gap 10 ms
}

TEST(TrafficModels, VbrAlternatesOnOff) {
  OnOffVbrModel m(1000, sim::Rate::mbps(8), sim::SimTime::milliseconds(30),
                  sim::SimTime::milliseconds(90), 11);
  int long_gaps = 0, short_gaps = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto u = m.next();
    ASSERT_TRUE(u.has_value());
    if (u->gap > sim::SimTime::milliseconds(5)) {
      ++long_gaps;  // an OFF period
    } else {
      ++short_gaps;  // within a burst
    }
  }
  EXPECT_GT(long_gaps, 10);
  EXPECT_GT(short_gaps, 1000);
}

TEST(TrafficModels, KeystrokesAreTiny) {
  KeystrokeModel m(sim::SimTime::milliseconds(200), 3);
  for (int i = 0; i < 200; ++i) {
    const auto u = m.next();
    ASSERT_TRUE(u.has_value());
    EXPECT_TRUE(u->bytes == 1 || u->bytes == 64);
  }
}

TEST(UnitHeader, EncodeDecodeRoundTrip) {
  UnitHeader h;
  h.id = 0xDEAD;
  h.sent_at_ns = 123'456'789;
  const auto bytes = h.encode(500);
  EXPECT_EQ(bytes.size(), 500u);
  UnitHeader back;
  ASSERT_TRUE(UnitHeader::decode(bytes, back));
  EXPECT_EQ(back.id, 0xDEADu);
  EXPECT_EQ(back.sent_at_ns, 123'456'789);
}

TEST(UnitHeader, RejectsShortOrUnmagic) {
  UnitHeader out;
  EXPECT_FALSE(UnitHeader::decode(std::vector<std::uint8_t>(8, 0), out));
  std::vector<std::uint8_t> junk(32, 0x42);
  EXPECT_FALSE(UnitHeader::decode(junk, out));
}

TEST(Workloads, AllNineConstructAndClassify) {
  for (std::size_t i = 0; i < kTable1AppCount; ++i) {
    const auto w = make_workload(static_cast<Table1App>(i), 42);
    EXPECT_FALSE(w.name.empty());
    EXPECT_NE(w.model, nullptr);
    EXPECT_GT(w.acd.quantitative.average_throughput.bits_per_sec(), 0.0);
  }
  EXPECT_EQ(mantts::classify(make_workload(Table1App::kVoice, 1).acd),
            mantts::Tsc::kInteractiveIsochronous);
  EXPECT_EQ(mantts::classify(make_workload(Table1App::kVideoRaw, 1).acd),
            mantts::Tsc::kDistributionalIsochronous);
  EXPECT_EQ(mantts::classify(make_workload(Table1App::kManufacturingControl, 1).acd),
            mantts::Tsc::kRealTimeNonIsochronous);
  EXPECT_EQ(mantts::classify(make_workload(Table1App::kFileTransfer, 1).acd),
            mantts::Tsc::kNonRealTimeNonIsochronous);
}

TEST(SourceSink, EndToEndLatencyMeasured) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 13); });
  SinkApp sink(world.host(1).timers());
  world.transport(1).set_acceptor([&](tko::TransportSession& s) { sink.attach(s); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::udp_compat_config());

  SourceApp source(session, std::make_unique<CbrModel>(160, sim::SimTime::milliseconds(20)),
                   world.host(0).timers(), sim::SimTime::seconds(1));
  source.start();
  world.run_for(sim::SimTime::seconds(2));

  EXPECT_TRUE(source.finished());
  EXPECT_EQ(source.stats().units_sent, 50u);
  const auto& st = sink.stats();
  EXPECT_EQ(st.units_received, 50u);
  EXPECT_EQ(st.estimated_lost(), 0u);
  EXPECT_GT(st.mean_latency_sec(), 0.0);
  EXPECT_LT(st.mean_latency_sec(), 0.01);
  EXPECT_EQ(st.misordered, 0u);
  EXPECT_EQ(st.duplicates, 0u);
}

TEST(SourceSink, SegmentedUnitsCountContinuationBytes) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 13); });
  SinkApp sink(world.host(1).timers());
  world.transport(1).set_acceptor([&](tko::TransportSession& s) { sink.attach(s); });
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.segment_bytes = 512;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  SourceApp source(session, std::make_unique<BulkModel>(8192, 4096), world.host(0).timers());
  source.start();
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_EQ(sink.stats().units_received, 2u);  // two 4096-byte units
  EXPECT_GT(sink.stats().continuation_bytes, 0u);
  EXPECT_EQ(sink.stats().bytes_received, 8192u);
}

TEST(QosEvaluator, GradesAgainstAcd) {
  mantts::Acd acd;
  acd.quantitative.max_latency = sim::SimTime::milliseconds(100);
  acd.quantitative.max_jitter = sim::SimTime::milliseconds(10);
  acd.quantitative.loss_tolerance = 0.1;
  acd.qualitative.sequenced_delivery = true;

  SourceStats src;
  src.units_sent = 100;
  SinkStats sink;
  sink.units_received = 95;
  sink.latencies_sec = std::vector<double>(95, 0.05);
  sink.first_arrival = sim::SimTime::milliseconds(1);
  sink.last_arrival = sim::SimTime::seconds(1);
  sink.bytes_received = 95'000;

  auto r = evaluate_qos(acd, src, sink);
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.verdict(), "PASS");
  EXPECT_NEAR(r.loss_fraction, 0.05, 1e-9);

  // Too much loss.
  sink.units_received = 50;
  r = evaluate_qos(acd, src, sink);
  EXPECT_FALSE(r.loss_ok);
  EXPECT_NE(r.verdict().find("loss"), std::string::npos);

  // Latency bust.
  sink.units_received = 95;
  sink.latencies_sec.assign(95, 0.5);
  r = evaluate_qos(acd, src, sink);
  EXPECT_FALSE(r.latency_ok);

  // Order violation matters only when sequencing was requested.
  sink.latencies_sec.assign(95, 0.05);
  sink.misordered = 3;
  r = evaluate_qos(acd, src, sink);
  EXPECT_FALSE(r.order_ok);
  acd.qualitative.sequenced_delivery = false;
  r = evaluate_qos(acd, src, sink);
  EXPECT_TRUE(r.order_ok);
}

TEST(Playout, ExportsIsochronousDeliveryDespiteJitter) {
  // A jittery path: CBR voice behind a congested backbone. The raw sink
  // sees the network's jitter; the playout sink trades a fixed delay for
  // near-zero residual jitter.
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 44); });
  net::BackgroundTrafficConfig bg;
  bg.src = {world.node(2), 9};
  bg.dst = {world.node(3), 9};
  bg.burst_rate = sim::Rate::mbps(1.3);
  bg.mean_burst = sim::SimTime::milliseconds(80);
  bg.mean_idle = sim::SimTime::milliseconds(120);
  net::BackgroundTraffic cross(world.network(), bg, 6);
  cross.start();

  SinkApp raw(world.host(1).timers());
  PlayoutSink playout(world.host(1).timers(), sim::SimTime::milliseconds(200));
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) {
      raw.on_message(tko::Message(m.clone()));
      playout.on_message(std::move(m));
    });
  });

  auto cfg = tko::sa::lightweight_isochronous_config();
  cfg.inter_pdu_gap = sim::SimTime::milliseconds(18);
  cfg.segment_bytes = 176;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  SourceApp source(session, std::make_unique<CbrModel>(160, sim::SimTime::milliseconds(20)),
                   world.host(0).timers(), sim::SimTime::seconds(5));
  source.start();
  world.run_for(sim::SimTime::seconds(6));
  cross.stop();

  EXPECT_GT(raw.stats().jitter_sec(), 0.001);  // the network really jittered
  EXPECT_LT(playout.stats().playout_jitter_sec(), 1e-6);  // playout absorbed it
  EXPECT_GT(playout.stats().played, 150u);
  // A 200ms budget on a <=150ms-delay path: few or no late drops.
  EXPECT_LT(playout.stats().loss_fraction(source.stats().units_sent), 0.1);
  EXPECT_GT(playout.stats().buffered_peak, 1u);  // it actually buffered
}

TEST(Playout, LateUnitsAreDroppedNotReplayed) {
  sim::EventScheduler sched;
  os::TimerFacility timers(sched);
  PlayoutSink sink(timers, sim::SimTime::milliseconds(10));

  UnitHeader h;
  h.id = 1;
  h.sent_at_ns = 0;
  // Arrives "now" at t=0 with a 10ms budget: plays at 10ms.
  sink.on_message(tko::Message::from_bytes(h.encode(64)));
  sched.run_until(sim::SimTime::milliseconds(50));
  EXPECT_EQ(sink.stats().played, 1u);
  EXPECT_EQ(sink.stats().play_error_sec.back(), 0.0);

  // A unit whose deadline already passed is a late drop.
  UnitHeader late;
  late.id = 2;
  late.sent_at_ns = 0;  // deadline was 10ms; now is 50ms
  sink.on_message(tko::Message::from_bytes(late.encode(64)));
  EXPECT_EQ(sink.stats().late_drops, 1u);
  // Duplicates are filtered.
  sink.on_message(tko::Message::from_bytes(h.encode(64)));
  EXPECT_EQ(sink.stats().duplicates, 1u);
}

}  // namespace
}  // namespace adaptive::app
