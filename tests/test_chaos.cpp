// Chaos-engine tests: the seeded adversarial plan generator, the
// overlap-safe fault injector, wire-mutation hardening (checksum burst
// detection, PDU flag validation, wild ack/sequence rejection), the
// session liveness watchdog, the delivery-invariant oracle, and the
// minimized chaos-seed regression corpus.
//
// Regressions pinned here (found during chaos development):
//  * FaultInjector restored overlapping same-link windows to the config
//    saved at each window's own start, so the link could stay degraded
//    after all faults ended (or come back up while an outage still
//    covered it).
//  * FaultInjector::record passed a local std::string's c_str() as a
//    TraceEvent detail; the ring kept the dangling pointer, making sweep
//    trace digests nondeterministic whenever fault events were traced.
//  * A corrupted cumulative ack serially ahead of everything sent (it
//    slipped through on a no-checksum config — chaos seed ethernet/342)
//    reaped unacknowledged data the receiver never got: silent loss.
#include "adaptive/scenario.hpp"
#include "adaptive/sweep.hpp"
#include "mantts/policy.hpp"
#include "net/fault_injector.hpp"
#include "os/buffer_pool.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_plan.hpp"
#include "tko/pdu.hpp"
#include "tko/sa/ack_strategy.hpp"
#include "tko/sa/gbn.hpp"
#include "tko/sa/selective_repeat.hpp"
#include "tko/sa/sequencing.hpp"
#include "unites/metric.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// ChaosPlanGenerator: pure, bounded, shard-order-independent derivation.
// ---------------------------------------------------------------------------

sim::ChaosProfile wan_profile() {
  sim::ChaosProfile p;
  p.link_count = 3;
  p.host_count = 4;
  p.horizon_sec = 8.0;
  p.max_faults = 6;
  return p;
}

TEST(ChaosPlan, SameSeedDerivesTheSamePlan) {
  const sim::ChaosPlanGenerator gen(wan_profile());
  for (std::uint64_t seed : {1ULL, 7ULL, 123456789ULL}) {
    EXPECT_EQ(gen.generate(seed).describe(), gen.generate(seed).describe());
  }
}

TEST(ChaosPlan, DistinctSeedsDeriveDistinctPlans) {
  const sim::ChaosPlanGenerator gen(wan_profile());
  EXPECT_NE(gen.generate(1).describe(), gen.generate(2).describe());
}

TEST(ChaosPlan, PlansRespectTheProfileBounds) {
  const sim::ChaosProfile prof = wan_profile();
  const sim::ChaosPlanGenerator gen(prof);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const sim::FaultPlan plan = gen.generate(seed);
    ASSERT_GE(plan.faults.size(), prof.min_faults) << "seed " << seed;
    ASSERT_LE(plan.faults.size(), prof.max_faults) << "seed " << seed;
    for (const auto& f : plan.faults) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ": " + f.describe());
      EXPECT_LT(f.link, prof.link_count);
      EXPECT_GT(f.at, sim::SimTime::zero());
      EXPECT_GT(f.duration, sim::SimTime::zero());
      // No partitions unless the profile opts in.
      EXPECT_NE(f.kind, sim::FaultKind::kPartition);
      // Every window closes inside the horizon, leaving the tail free for
      // recovery (flaps count their whole episode train).
      const sim::SimTime tail = f.kind == sim::FaultKind::kLinkFlap && f.count > 1
                                    ? f.period * static_cast<std::int64_t>(f.count - 1)
                                    : sim::SimTime::zero();
      EXPECT_LE((f.at + tail + f.duration).sec(), prof.horizon_sec);
    }
  }
}

TEST(ChaosPlan, DerivationIsShardOrderIndependent) {
  // The same seeds generated from different threads, interleaved with
  // other seeds' generations, must produce identical plans — the property
  // that lets `--jobs N` replay exactly what `--jobs 1` ran.
  const sim::ChaosPlanGenerator gen(wan_profile());
  std::vector<std::string> serial;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) serial.push_back(gen.generate(seed).describe());

  std::vector<std::string> threaded(16);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (std::size_t w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      // Reverse order inside each worker: order must not matter.
      for (std::size_t i = 4; i-- > 0;) {
        const std::size_t idx = w * 4 + i;
        threaded[idx] = gen.generate(idx + 1).describe();
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(serial, threaded);
}

// ---------------------------------------------------------------------------
// FaultInjector overlap regressions: overlapping windows on the same link
// must compose while active and restore the pre-fault baseline exactly
// when the last one ends. (The old per-episode save/restore restored the
// config captured at each window's own start — the second window's save
// had already been faulted by the first, so the link stayed degraded.)
// ---------------------------------------------------------------------------

TEST(FaultInjectorOverlap, OverlappingBandwidthWindowsRestoreTheBaseline) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);
  const auto baseline = world.network().link(fwd).config();

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan("bw@1+2:link=0,factor=0.5;bw@2+2:link=0,factor=0.25"));

  auto bps = [&] { return world.network().link(fwd).config().bandwidth.bits_per_sec(); };
  world.run_until(sim::SimTime::milliseconds(1500));  // first only
  EXPECT_DOUBLE_EQ(bps(), baseline.bandwidth.bits_per_sec() * 0.5);
  world.run_until(sim::SimTime::milliseconds(2500));  // both active
  EXPECT_DOUBLE_EQ(bps(), baseline.bandwidth.bits_per_sec() * 0.5 * 0.25);
  world.run_until(sim::SimTime::milliseconds(3200));  // second only
  EXPECT_DOUBLE_EQ(bps(), baseline.bandwidth.bits_per_sec() * 0.25);
  world.run_until(sim::SimTime::milliseconds(4200));  // all ended
  EXPECT_DOUBLE_EQ(bps(), baseline.bandwidth.bits_per_sec());
}

TEST(FaultInjectorOverlap, MixedKindWindowsComposeAgainstTheBaseline) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);
  const auto baseline = world.network().link(fwd).config();

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan(
      "delay@1+2:link=0,add=0.1;bw@1.5+2:link=0,factor=0.5;"
      "mutate@2+1:link=0,corrupt=0.2,trunc=0.1"));

  auto cfg = [&] { return world.network().link(fwd).config(); };
  world.run_until(sim::SimTime::milliseconds(2500));  // all three active
  EXPECT_DOUBLE_EQ(cfg().propagation_delay.sec(), baseline.propagation_delay.sec() + 0.1);
  EXPECT_DOUBLE_EQ(cfg().bandwidth.bits_per_sec(), baseline.bandwidth.bits_per_sec() * 0.5);
  EXPECT_DOUBLE_EQ(cfg().corrupt_probability, 0.2);
  EXPECT_DOUBLE_EQ(cfg().truncate_probability, 0.1);

  world.run_until(sim::SimTime::seconds(6));  // every window closed
  EXPECT_DOUBLE_EQ(cfg().propagation_delay.sec(), baseline.propagation_delay.sec());
  EXPECT_DOUBLE_EQ(cfg().bandwidth.bits_per_sec(), baseline.bandwidth.bits_per_sec());
  EXPECT_DOUBLE_EQ(cfg().corrupt_probability, 0.0);
  EXPECT_DOUBLE_EQ(cfg().truncate_probability, 0.0);
}

TEST(FaultInjectorOverlap, OverlappingOutagesAreRefcounted) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan("down@1+1:link=0;down@1.5+1:link=0"));

  world.run_until(sim::SimTime::milliseconds(2200));  // first ended, second active
  // Old behaviour: the first end_episode brought the pair up while the
  // second outage window still covered it.
  EXPECT_FALSE(world.network().link(fwd).is_up());
  world.run_until(sim::SimTime::milliseconds(2600));  // both ended
  EXPECT_TRUE(world.network().link(fwd).is_up());
}

TEST(FaultInjectorOverlap, SelfOverlappingFlapStaysDownUntilTheLastEpisodeEnds) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  // Episodes [1,1.5], [1.2,1.7], [1.4,1.9]: each overlaps the next.
  injector.arm(sim::parse_fault_plan("flap@1+0.5:link=0,count=3,period=0.2"));

  for (const std::int64_t ms : {1100, 1300, 1550, 1750}) {
    world.run_until(sim::SimTime::milliseconds(ms));
    EXPECT_FALSE(world.network().link(fwd).is_up()) << "t=" << ms << "ms";
  }
  world.run_until(sim::SimTime::seconds(2));
  EXPECT_TRUE(world.network().link(fwd).is_up());
}

// ---------------------------------------------------------------------------
// Checksum hardening under burst corruption: every contiguous 1-, 2-, and
// 8-bit flip anywhere in the wire image must be caught, and a truncated
// PDU must never pass validation.
// ---------------------------------------------------------------------------

tko::Pdu sample_pdu(os::BufferPool& pool, std::size_t payload_bytes) {
  tko::Pdu p;
  p.type = tko::PduType::kData;
  p.session_id = 42;
  p.seq = 1234;
  p.ack = 99;
  p.window = 16;
  p.aux = 7;
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i * 37);
  p.payload = tko::Message::from_bytes(payload, &pool);
  return p;
}

std::vector<std::uint8_t> sample_wire(os::BufferPool& pool, tko::ChecksumKind kind,
                                      tko::ChecksumPlacement placement,
                                      std::size_t payload_bytes = 61) {
  return tko::encode_pdu(sample_pdu(pool, payload_bytes), kind, placement).linearize();
}

tko::DecodeStatus decode_bytes(os::BufferPool& pool, const std::vector<std::uint8_t>& bytes) {
  return tko::decode_pdu(tko::Message::from_bytes(bytes, &pool)).status;
}

TEST(ChecksumBurst, ContiguousFlipsOfOneTwoAndEightBitsAreAlwaysDetected) {
  os::BufferPool pool;
  for (const auto kind : {tko::ChecksumKind::kInternet16, tko::ChecksumKind::kCrc32}) {
    for (const auto placement :
         {tko::ChecksumPlacement::kTrailer, tko::ChecksumPlacement::kHeader}) {
      const auto clean = sample_wire(pool, kind, placement);
      ASSERT_EQ(decode_bytes(pool, clean), tko::DecodeStatus::kOk);
      const std::size_t bits = clean.size() * 8;
      for (const std::size_t len : {1u, 2u, 8u}) {
        for (std::size_t first = 0; first + len <= bits; ++first) {
          auto mutated = clean;
          for (std::size_t b = first; b < first + len; ++b) {
            mutated[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
          }
          ASSERT_NE(decode_bytes(pool, mutated), tko::DecodeStatus::kOk)
              << "undetected " << len << "-bit burst at bit " << first << " (kind "
              << static_cast<int>(kind) << ", placement " << static_cast<int>(placement) << ")";
        }
      }
    }
  }
}

TEST(ChecksumBurst, TruncatedPdusNeverPassValidation) {
  os::BufferPool pool;
  for (const auto kind : {tko::ChecksumKind::kNone, tko::ChecksumKind::kInternet16,
                          tko::ChecksumKind::kCrc32}) {
    const auto clean = sample_wire(pool, kind, tko::ChecksumPlacement::kTrailer);
    ASSERT_EQ(decode_bytes(pool, clean), tko::DecodeStatus::kOk);
    for (std::size_t keep = 0; keep < clean.size(); ++keep) {
      const std::vector<std::uint8_t> cut(clean.begin(),
                                          clean.begin() + static_cast<std::ptrdiff_t>(keep));
      ASSERT_NE(decode_bytes(pool, cut), tko::DecodeStatus::kOk)
          << "truncation to " << keep << " of " << clean.size() << " bytes passed (kind "
          << static_cast<int>(kind) << ")";
    }
  }
}

TEST(PduHardening, UnknownFlagBitsAreRejectedNotGuessedAt) {
  os::BufferPool pool;
  auto wire = sample_wire(pool, tko::ChecksumKind::kNone, tko::ChecksumPlacement::kTrailer);
  wire[2] |= 0x20;  // flags high byte: a bit no encoder version sets
  EXPECT_EQ(decode_bytes(pool, wire), tko::DecodeStatus::kMalformed);
}

// Regression: with header checksum placement, flipping the single
// kNoChecksum bit used to convert a checksummed PDU into a "nothing to
// verify" PDU with no length change — the decoder skipped verification
// and accepted arbitrarily corrupted payloads. The echo copy of the bit
// (pdu_flags::kNoChecksumEcho, in the other flags byte) makes the
// downgrade detectable again.
TEST(PduHardening, ChecksumDowngradeByASingleFlagFlipIsRejected) {
  os::BufferPool pool;
  for (const auto kind : {tko::ChecksumKind::kInternet16, tko::ChecksumKind::kCrc32}) {
    auto wire = sample_wire(pool, kind, tko::ChecksumPlacement::kHeader);
    wire[3] ^= 0x10;   // switch verification off...
    wire[30] ^= 0xFF;  // ...then corrupt the payload with impunity
    EXPECT_EQ(decode_bytes(pool, wire), tko::DecodeStatus::kMalformed)
        << "downgrade not caught (kind " << static_cast<int>(kind) << ")";
  }
}

TEST(PduHardening, ContradictoryChecksumFlagsAreRejected) {
  os::BufferPool pool;
  auto wire = sample_wire(pool, tko::ChecksumKind::kNone, tko::ChecksumPlacement::kTrailer);
  // kNoChecksum is set by the encoder; also setting kCrc32 can only come
  // from corruption — and would skip verification if honoured.
  wire[3] |= 0x08;
  EXPECT_EQ(decode_bytes(pool, wire), tko::DecodeStatus::kMalformed);
}

}  // namespace
}  // namespace adaptive

// ---------------------------------------------------------------------------
// Wild ack / wild sequence rejection (silent-loss regression). Driven
// through a fake SessionCore, same idiom as test_mechanisms.cpp.
// ---------------------------------------------------------------------------
namespace adaptive::tko::sa {
namespace {

class FakeCore final : public SessionCore {
public:
  FakeCore() : timers_(sched) {}

  void emit(Pdu&& p) override { emitted.push_back(std::move(p)); }
  void deliver(Message&& m) override { delivered.push_back(m.linearize()); }
  os::TimerFacility& timers() override { return timers_; }
  os::BufferPool& buffers() override { return pool_; }
  [[nodiscard]] sim::SimTime now() const override { return sched.now(); }
  [[nodiscard]] std::size_t receiver_count() const override { return 1; }
  void tx_ready() override {}
  void connection_established() override {}
  void connection_closed(bool) override {}
  void loss_signal() override {}
  void count(std::string_view, double) override {}

  sim::EventScheduler sched;
  os::TimerFacility timers_;
  os::BufferPool pool_;
  std::vector<Pdu> emitted;
  std::vector<std::vector<std::uint8_t>> delivered;
};

Message msg(std::uint8_t tag) { return Message::from_bytes(std::vector<std::uint8_t>{tag}); }

Pdu ack_pdu(std::uint32_t cum) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = cum;
  return p;
}

Pdu data_pdu(std::uint32_t seq) {
  Pdu p;
  p.type = PduType::kData;
  p.seq = seq;
  p.payload = msg(1);
  return p;
}

TEST(WildWire, GbnDropsAcksSeriallyAheadOfAnythingSent) {
  FakeCore core;
  ImmediateAck ack;
  PassThrough seq;
  ack.attach(core);
  seq.attach(core);
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.wire(&ack, &seq);

  for (std::uint8_t i = 0; i < 3; ++i) gbn.send_data(msg(i));  // seqs 1..3
  ASSERT_EQ(gbn.in_flight(), 3u);

  // Regression: a corrupted cumulative ack ahead of next_seq-1 used to
  // reap all three unacked PDUs — data the receiver never got would never
  // be retransmitted (silent loss). It must be rejected instead.
  EXPECT_EQ(gbn.on_ack(ack_pdu(5000), 9), 0u);
  EXPECT_EQ(gbn.in_flight(), 3u);
  EXPECT_FALSE(gbn.all_acked());
  EXPECT_EQ(gbn.stats().wild_acks_rejected, 1u);

  // A legitimate ack still lands.
  EXPECT_EQ(gbn.on_ack(ack_pdu(3), 9), 3u);
  EXPECT_TRUE(gbn.all_acked());
}

TEST(WildWire, SelectiveRepeatDropsAcksSeriallyAheadOfAnythingSent) {
  FakeCore core;
  ImmediateAck ack;
  Resequencer seq;
  ack.attach(core);
  seq.attach(core);
  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  sr.wire(&ack, &seq);

  for (std::uint8_t i = 0; i < 3; ++i) sr.send_data(msg(i));  // seqs 1..3
  ASSERT_EQ(sr.in_flight(), 3u);
  EXPECT_EQ(sr.on_ack(ack_pdu(40000), 9), 0u);
  EXPECT_EQ(sr.in_flight(), 3u);
  EXPECT_EQ(sr.stats().wild_acks_rejected, 1u);
  EXPECT_EQ(sr.on_ack(ack_pdu(3), 9), 3u);
  EXPECT_TRUE(sr.all_acked());
}

TEST(WildWire, SelectiveRepeatDropsDataSequencesFarBeyondTheWindow) {
  FakeCore core;
  ImmediateAck ack;
  Resequencer seq;
  ack.attach(core);
  seq.attach(core);
  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  sr.wire(&ack, &seq);

  // A wild far-ahead sequence would sit in rcv_out_of_order forever —
  // nothing ever fills the fake gap below it. It must be rejected.
  sr.on_data(data_pdu(10'000'000), 9);
  EXPECT_EQ(sr.stats().wild_seqs_rejected, 1u);
  EXPECT_TRUE(core.delivered.empty());

  // In-window data still flows.
  sr.on_data(data_pdu(1), 9);
  sr.on_data(data_pdu(2), 9);
  EXPECT_EQ(core.delivered.size(), 2u);
}

}  // namespace
}  // namespace adaptive::tko::sa

// ---------------------------------------------------------------------------
// Invariant oracle, watchdog, determinism, and the chaos-seed corpus.
// ---------------------------------------------------------------------------
namespace adaptive {
namespace {

RunOutcome reliable_outcome() {
  RunOutcome out;
  out.config.recovery = tko::sa::RecoveryScheme::kGoBackN;
  out.config.ordered_delivery = true;
  out.config.filter_duplicates = true;
  out.receivers = 1;
  out.source.bytes_sent = 1000;
  out.source.units_sent = 10;
  out.sink.bytes_received = 1000;
  return out;
}

TEST(InvariantOracle, CleanReliableRunPassesEveryApplicableRule) {
  const auto rep = InvariantOracle::check(RunOptions{}, reliable_outcome());
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.checked_loss);
  EXPECT_TRUE(rep.checked_duplicates);
  EXPECT_TRUE(rep.checked_ordering);
  EXPECT_TRUE(rep.checked_stall);
  EXPECT_EQ(rep.describe(), "ok");
}

TEST(InvariantOracle, SilentLossOnAReliableClassIsAViolation) {
  auto out = reliable_outcome();
  out.sink.bytes_received = 990;
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "no-silent-loss");
}

TEST(InvariantOracle, MulticastExpectsEveryReceiverToGetEveryByte) {
  auto out = reliable_outcome();
  out.receivers = 3;
  out.sink.bytes_received = 2000;  // one receiver short
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "no-silent-loss");
}

TEST(InvariantOracle, DuplicateAndMisorderedDeliveriesAreViolations) {
  auto out = reliable_outcome();
  out.sink.duplicates = 2;
  out.sink.misordered = 1;
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  ASSERT_EQ(rep.violations.size(), 2u);
  EXPECT_EQ(rep.violations[0].rule, "no-duplicates");
  EXPECT_EQ(rep.violations[1].rule, "in-order");
}

TEST(InvariantOracle, UnrecoveredStallIsAViolationEvenWhenDataArrived) {
  auto out = reliable_outcome();
  out.session.watchdog_stalls = 2;
  out.session.watchdog_recoveries = 1;
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "bounded-stall");
}

TEST(InvariantOracle, QosDowngradeGatesDeliveryRulesOffButNotStall) {
  auto out = reliable_outcome();
  out.mantts.qos_downgrades = 1;
  out.sink.bytes_received = 0;  // contract was traded away — not a violation
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.checked_loss);
  EXPECT_FALSE(rep.checked_duplicates);
  EXPECT_TRUE(rep.checked_stall);
}

TEST(InvariantOracle, RefusedSessionHasNoContractToCheck) {
  auto out = reliable_outcome();
  out.refused = true;
  out.sink.bytes_received = 0;
  const auto rep = InvariantOracle::check(RunOptions{}, out);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.checked_loss);
  EXPECT_FALSE(rep.checked_stall);
}

// ---------------------------------------------------------------------------
// Liveness watchdog: an outage longer than the stall deadline must be
// detected as a stall, recovered from, and end with every byte delivered.
// ---------------------------------------------------------------------------

TEST(Watchdog, OutageStallIsDetectedRecoveredAndLossless) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 11); });

  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::fault_recovery_rules();
  opt.faults = sim::parse_fault_plan("down@2+1.5:link=0");
  opt.scale = 0.35;
  opt.duration = sim::SimTime::seconds(8);
  opt.drain = sim::SimTime::seconds(12);
  opt.seed = 11;
  opt.collect_metrics = true;

  const auto out = run_scenario(world, opt);

  // 1.5s of outage against a 1s no-progress deadline: at least one stall,
  // and every stall recovered once the link came back.
  EXPECT_GE(out.session.watchdog_stalls, 1u);
  EXPECT_EQ(out.session.watchdog_stalls, out.session.watchdog_recoveries);

  // The stall and its recovery landed in UNITES.
  const auto stalls = world.repository().systemwide_histogram(unites::metrics::kWatchdogStall);
  const auto rec =
      world.repository().systemwide_histogram(unites::metrics::kWatchdogRecoveryNs);
  EXPECT_EQ(stalls.count(), out.session.watchdog_stalls);
  EXPECT_EQ(rec.count(), out.session.watchdog_recoveries);
  EXPECT_GT(rec.p50(), 0.0);

  // ... and the delivery contract held end to end.
  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
  EXPECT_EQ(out.sink.duplicates, 0u);
}

// ---------------------------------------------------------------------------
// Wire-mutation storm: with corruption, duplication, reordering, and
// truncation all armed, a reliable transfer must still deliver every byte
// exactly once, in order.
// ---------------------------------------------------------------------------

TEST(WireMutation, MutationStormDeliversExactlyOnceInOrder) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 5); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);

  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::fault_recovery_rules();
  opt.faults = sim::parse_fault_plan(
      "mutate@1+4:link=0,corrupt=0.05,dup=0.1,reorder=0.15,trunc=0.02");
  opt.scale = 0.35;
  opt.duration = sim::SimTime::seconds(8);
  opt.drain = sim::SimTime::seconds(12);
  opt.seed = 5;
  opt.collect_metrics = true;

  const auto out = run_scenario(world, opt);

  // The adversary actually fired...
  const auto& ls = world.network().link(fwd).stats();
  const auto& rs = world.network().link(fwd ^ 1u).stats();
  EXPECT_GT(ls.corrupted + ls.duplicated + ls.reordered + ls.truncated + rs.corrupted +
                rs.duplicated + rs.reordered + rs.truncated,
            0u);
  // ... and the contract held anyway.
  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
  EXPECT_EQ(out.sink.duplicates, 0u);
  EXPECT_TRUE(out.qos.order_ok);
}

// ---------------------------------------------------------------------------
// Determinism: chaos sweeps must produce byte-identical merged traces for
// any --jobs value. Also pins the dangling-TraceEvent-detail regression:
// fault begin/end events used to carry a local string's c_str(), so two
// identical sweeps digested differently.
// ---------------------------------------------------------------------------

SweepConfig chaos_sweep_config(std::size_t seeds, std::size_t jobs) {
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
    return [seed](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, seed); };
  };
  sc.base.application = app::Table1App::kFileTransfer;
  sc.base.mode = RunOptions::Mode::kMantttsAdaptive;
  sc.base.rules = mantts::PolicyEngine::fault_recovery_rules();
  sc.base.scale = 0.35;
  sc.base.duration = sim::SimTime::seconds(8);
  sc.base.drain = sim::SimTime::seconds(12);
  sc.base.collect_metrics = true;
  sc.chaos = 6;
  sc.jobs = jobs;
  sc.capture_trace = true;
  for (std::uint64_t s = 1; s <= seeds; ++s) sc.seeds.push_back(s);
  return sc;
}

TEST(ChaosDeterminism, RepeatedSerialSweepsDigestIdentically) {
  const auto a = run_sweep(chaos_sweep_config(4, 1));
  const auto b = run_sweep(chaos_sweep_config(4, 1));
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(ChaosDeterminism, SerialAndParallelChaosSweepsDigestIdentically) {
  const auto serial = run_sweep(chaos_sweep_config(6, 1));
  const auto parallel = run_sweep(chaos_sweep_config(6, 4));
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].chaos_plan, parallel.runs[i].chaos_plan) << "seed index " << i;
    EXPECT_EQ(serial.runs[i].violations, parallel.runs[i].violations) << "seed index " << i;
  }
}

TEST(ChaosDeterminism, ScriptedFaultTraceDigestsAreStable) {
  // Minimal pin for the dangling-detail bug: any sweep whose trace
  // contains net.fault.* events must digest reproducibly.
  auto make = [](std::size_t jobs) {
    SweepConfig sc = chaos_sweep_config(3, jobs);
    sc.chaos = 0;
    sc.base.faults = sim::parse_fault_plan("flap@2+0.3:link=0,count=3,period=1");
    return sc;
  };
  const auto a = run_sweep(make(1));
  const auto b = run_sweep(make(2));
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

// ---------------------------------------------------------------------------
// Chaos-seed regression corpus: seeds whose generated plans exposed bugs
// during development, replayed end to end so fixed wedges stay fixed.
// ---------------------------------------------------------------------------

struct ChaosSeedCase {
  std::string topology;
  std::size_t max_faults = 0;
  std::uint64_t seed = 0;
  std::string verdict;
};

std::vector<ChaosSeedCase> load_chaos_seed_corpus() {
  const std::string path = std::string(ADAPTIVE_TEST_CORPUS_DIR) + "/chaos_seeds.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::vector<ChaosSeedCase> cases;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    std::string verdict;
    if (hash != std::string::npos) {
      verdict = line.substr(hash + 1);
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    ChaosSeedCase c;
    if (!(fields >> c.topology >> c.max_faults >> c.seed)) continue;
    c.verdict = verdict;
    cases.push_back(std::move(c));
  }
  EXPECT_FALSE(cases.empty()) << "empty corpus at " << path;
  return cases;
}

World::TopologyFactory corpus_topology(const ChaosSeedCase& c) {
  const std::uint64_t seed = c.seed;
  if (c.topology == "congested-wan") {
    return [seed](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, seed); };
  }
  return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); };
}

/// Replays one corpus seed through the exact config its sweep ran: the
/// CLI-default lightweight run for "ethernet", the bench_chaos adaptive
/// run for "congested-wan".
RunOutcome replay_chaos_seed(World& world, const ChaosSeedCase& c, std::string* plan_text) {
  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.seed = c.seed;
  opt.collect_metrics = true;
  if (c.topology == "congested-wan") {
    opt.mode = RunOptions::Mode::kMantttsAdaptive;
    opt.rules = mantts::PolicyEngine::fault_recovery_rules();
    opt.scale = 0.35;
    opt.duration = sim::SimTime::seconds(8);
    opt.drain = sim::SimTime::seconds(12);
  } else {
    opt.mode = RunOptions::Mode::kManntts;
    opt.duration = sim::SimTime::seconds(5);
    opt.drain = sim::SimTime::seconds(4);
  }
  const sim::ChaosProfile prof = size_chaos_profile({}, world, opt, c.max_faults);
  opt.faults = sim::ChaosPlanGenerator(prof).generate(c.seed);
  *plan_text = opt.faults->describe();
  return run_scenario(world, opt);
}

TEST(ChaosSeedCorpus, EveryCheckedInSeedReplaysWithoutViolations) {
  for (const auto& c : load_chaos_seed_corpus()) {
    SCOPED_TRACE(c.topology + " seed " + std::to_string(c.seed) + " —" + c.verdict);
    World world(corpus_topology(c));
    std::string plan;
    const RunOutcome out = replay_chaos_seed(world, c, &plan);
    EXPECT_TRUE(out.oracle.ok())
        << "seed " << c.seed << ": " << out.oracle.describe() << "\n  plan : " << plan
        << "\n  repro: adaptive_cli --topology " << c.topology
        << " --app file-transfer --chaos " << c.max_faults << " --seeds " << c.seed;
  }
}

TEST(ChaosSeedCorpus, WatchdogSeedsStallAndRecover) {
  // The congested-wan corpus seeds are there because their plans wedged
  // the session until the watchdog prod existed: replaying them must show
  // the stall actually happening — and being recovered.
  for (const auto& c : load_chaos_seed_corpus()) {
    if (c.topology != "congested-wan") continue;
    SCOPED_TRACE("seed " + std::to_string(c.seed));
    World world(corpus_topology(c));
    std::string plan;
    const RunOutcome out = replay_chaos_seed(world, c, &plan);
    EXPECT_GE(out.session.watchdog_stalls, 1u) << plan;
    EXPECT_EQ(out.session.watchdog_stalls, out.session.watchdog_recoveries);
    EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
  }
}

TEST(ChaosSeedCorpus, WildAckSeedExercisesTheSilentLossGuard) {
  // ethernet/342: the generated plan corrupts an ACK on a no-checksum
  // lightweight config; pre-fix the wild cumulative ack reaped unacked
  // data (silent loss). The guard must fire and the contract must hold.
  for (const auto& c : load_chaos_seed_corpus()) {
    if (c.topology != "ethernet") continue;
    SCOPED_TRACE("seed " + std::to_string(c.seed));
    World world(corpus_topology(c));
    std::string plan;
    const RunOutcome out = replay_chaos_seed(world, c, &plan);
    const auto wild = world.repository().systemwide_histogram("reliability.wild_ack");
    EXPECT_GE(wild.count(), 1u) << plan;
    EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  }
}

}  // namespace
}  // namespace adaptive
