// Live QoS-conformance suite (DESIGN §16): the streaming window fold
// (checked against a brute-force recompute of the same event stream), the
// SLO error-budget and fast/slow burn rates, breach/recovery hysteresis,
// contract (re-)registration across RECONFIG / segue / handover, the
// breach-armed flight-recorder bundle, and the determinism gate — a
// 64-seed sweep's conformance plane must be byte-identical between
// --jobs 1 and --jobs 8.
#include "adaptive/sweep.hpp"
#include "app/qos_evaluator.hpp"
#include "mantts/qos_contract.hpp"
#include "unites/conformance.hpp"
#include "unites/export.hpp"
#include "unites/metric.hpp"
#include "unites/repository.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace adaptive {
namespace {

constexpr std::int64_t kW = 250'000'000;  // default window, ns
constexpr std::uint32_t kSid = 42;

sim::SimTime at(std::int64_t ns) { return sim::SimTime(ns); }

/// A latency-only contract: bound 1 ms, everything else vacuous, sized to
/// `duration_windows` windows so budget math is easy to predict.
mantts::QosContract latency_contract(double duration_windows = 100.0) {
  mantts::QosContract c;
  c.session = kSid;
  c.host = 3;
  c.max_latency_ns = 1'000'000;  // 1 ms
  c.max_jitter_ns = -1;
  c.loss_tolerance = 1.0;
  c.sequenced = false;
  c.duplicate_sensitive = false;
  c.duration_ns = static_cast<std::int64_t>(duration_windows * static_cast<double>(kW));
  return c;
}

/// Deliver one unit inside window `idx` (grid anchored at t=0 by the
/// first call with idx 0): late units carry 10 ms latency, on-time 0.1 ms.
void feed_window(unites::ConformanceMonitor& mon, std::size_t idx, bool bad) {
  const std::int64_t t = static_cast<std::int64_t>(idx) * kW + (idx == 0 ? 0 : 1000);
  mon.on_delivery(kSid, static_cast<std::uint32_t>(idx), at(t),
                  bad ? 10'000'000 : 100'000, /*bytes=*/100, false, false);
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

std::filesystem::path scratch_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("adaptive_conformance_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// grade_window: the single grading function
// ---------------------------------------------------------------------------

TEST(GradeWindow, DimensionsWithoutEvidenceAreVacuouslyTrue) {
  const mantts::QosContract c = latency_contract();
  unites::WindowStats s;  // nothing delivered
  unites::WindowVerdict v;
  unites::grade_window(c, s, /*grade_throughput=*/true, v);
  EXPECT_TRUE(v.ok());
}

TEST(GradeWindow, MeanLatencyOverBoundFailsOnlyLatency) {
  const mantts::QosContract c = latency_contract();
  unites::WindowStats s;
  s.delivered = 2;
  s.expected = 2;
  s.add_latency(3'000'000);
  s.add_latency(4'000'000);
  unites::WindowVerdict v;
  unites::grade_window(c, s, false, v);
  EXPECT_FALSE(v.latency_ok);
  EXPECT_TRUE(v.jitter_ok);
  EXPECT_TRUE(v.loss_ok);
  EXPECT_STREQ(v.worst(), "latency");
}

TEST(GradeWindow, LossToleranceUsesTheEpsilonTheOldEvaluatorUsed) {
  mantts::QosContract c = latency_contract();
  c.max_latency_ns = -1;
  c.loss_tolerance = 1.0 / 3.0;
  unites::WindowStats s;
  s.delivered = 2;
  s.lost = 1;
  s.expected = 3;
  unites::WindowVerdict v;
  unites::grade_window(c, s, false, v);
  EXPECT_TRUE(v.loss_ok);  // exactly at tolerance: representation noise must not fail
  s.lost = 2;
  s.expected = 4;
  unites::grade_window(c, s, false, v);
  EXPECT_FALSE(v.loss_ok);
}

TEST(GradeWindow, QualitativeBitsArmOrderAndDuplicateGrading) {
  mantts::QosContract c = latency_contract();
  c.max_latency_ns = -1;
  unites::WindowStats s;
  s.delivered = 5;
  s.expected = 5;
  s.misordered = 1;
  s.duplicates = 1;
  unites::WindowVerdict v;
  unites::grade_window(c, s, false, v);
  EXPECT_TRUE(v.order_ok);  // contract does not care
  EXPECT_TRUE(v.duplicates_ok);
  c.sequenced = true;
  c.duplicate_sensitive = true;
  unites::grade_window(c, s, false, v);
  EXPECT_FALSE(v.order_ok);
  EXPECT_FALSE(v.duplicates_ok);
}

TEST(GradeWindow, ThroughputFloorGradedOnlyWhenAsked) {
  mantts::QosContract c = latency_contract();
  c.max_latency_ns = -1;
  c.min_throughput_bps = 1e6;
  unites::WindowStats s;
  s.delivered = 1;
  s.expected = 1;
  s.bytes = 100;       // 800 bits over 250 ms = 3.2 kbps, far under the floor
  s.span_ns = kW;
  unites::WindowVerdict v;
  unites::grade_window(c, s, /*grade_throughput=*/false, v);
  EXPECT_TRUE(v.throughput_ok);  // partial/post-mortem: ungraded
  unites::grade_window(c, s, /*grade_throughput=*/true, v);
  EXPECT_FALSE(v.throughput_ok);
}

// ---------------------------------------------------------------------------
// The streaming fold vs a brute-force recompute
// ---------------------------------------------------------------------------

TEST(ConformanceMonitor, WindowFoldMatchesBruteForceRecompute) {
  unites::ConformanceMonitor mon;
  mon.register_contract(latency_contract(), at(0));

  // A deterministic pseudo-random event stream: 400 units, jittered
  // inter-send gaps, latencies spanning both sides of the 1 ms bound.
  struct Event {
    std::int64_t send_ns;
    std::int64_t deliver_ns;
    std::int64_t latency_ns;
  };
  std::vector<Event> events;
  std::uint64_t lcg = 12345;
  const auto next = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % mod;
  };
  std::int64_t t = 1'000'000;  // first event anchors the grid here
  for (std::uint32_t u = 0; u < 400; ++u) {
    t += 4'000'000 + static_cast<std::int64_t>(next(8'000'000));
    const auto latency = static_cast<std::int64_t>(200'000 + next(2'000'000));
    events.push_back({t, t + latency, latency});
  }
  // Interleave sends and deliveries into one global time-ordered feed —
  // the monitor consumes events exactly as the simulation emits them.
  struct Feed {
    std::int64_t when_ns;
    bool is_delivery;
    std::uint32_t unit;
  };
  std::vector<Feed> feed;
  for (std::uint32_t u = 0; u < events.size(); ++u) {
    feed.push_back({events[u].send_ns, false, u});
    feed.push_back({events[u].deliver_ns, true, u});
  }
  std::stable_sort(feed.begin(), feed.end(),
                   [](const Feed& a, const Feed& b) { return a.when_ns < b.when_ns; });
  for (const Feed& f : feed) {
    if (f.is_delivery) {
      mon.on_delivery(kSid, f.unit, at(f.when_ns), events[f.unit].latency_ns, 120, false, false);
    } else {
      mon.on_send(kSid, f.unit, at(f.when_ns));
    }
  }
  mon.finalize(kSid, at(feed.back().when_ns + 1));

  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  ASSERT_FALSE(rep->windows.empty());

  // Brute force: bucket the same deliveries into [anchor + k*W) windows
  // and recompute every per-window figure from the raw samples, folding
  // in the same order the monitor saw them.
  const std::int64_t anchor = events.front().send_ns;  // first event anchors the grid
  std::uint64_t total_delivered = 0;
  for (const unites::WindowVerdict& w : rep->windows) {
    std::uint64_t delivered = 0, late = 0;
    double sum = 0.0, sum_sq = 0.0;
    std::int64_t max_l = 0;
    for (const Feed& f : feed) {
      if (!f.is_delivery) continue;
      const Event& e = events[f.unit];
      if (e.deliver_ns < w.start_ns || e.deliver_ns >= w.end_ns) continue;
      ++delivered;
      const auto l = static_cast<double>(e.latency_ns);
      sum += l;
      sum_sq += l * l;
      max_l = std::max(max_l, e.latency_ns);
      if (e.latency_ns > 1'000'000) ++late;
    }
    EXPECT_EQ(w.stats.delivered, delivered) << "window @" << w.start_ns;
    EXPECT_EQ(w.stats.late, late);
    EXPECT_EQ(w.stats.max_latency_ns, max_l);
    EXPECT_EQ(w.stats.sum_latency_ns, sum);  // identical fold order => exact
    EXPECT_EQ(w.stats.sum_sq_latency_ns, sum_sq);
    if (delivered > 0) {
      const auto mean = static_cast<std::int64_t>(sum / static_cast<double>(delivered));
      EXPECT_EQ(w.stats.mean_latency_ns(), mean);
      EXPECT_EQ(w.latency_ok, mean <= 1'000'000);
    }
    EXPECT_EQ((w.start_ns - anchor) % kW, 0) << "grid must anchor at the first event";
    total_delivered += w.stats.delivered;
  }
  EXPECT_EQ(total_delivered, events.size());
  EXPECT_EQ(rep->cumulative.delivered, events.size());
  EXPECT_EQ(rep->units_sent, events.size());
  // Everything was delivered before finalize: no loss anywhere.
  EXPECT_EQ(rep->cumulative.lost, 0u);
}

TEST(ConformanceMonitor, OutstandingUnitsBecomeLossesPastTheHorizonAndAtFinalize) {
  unites::ConformanceMonitor mon;
  mantts::QosContract c = latency_contract();
  c.max_latency_ns = -1;
  c.loss_tolerance = 0.0;
  mon.register_contract(c, at(0));

  mon.on_send(kSid, 1, at(0));
  mon.on_send(kSid, 2, at(1'000'000));
  mon.on_delivery(kSid, 1, at(2'000'000), 2'000'000, 100, false, false);
  // Unit 2 never arrives. Horizon is 2 s: a send event 3 s later rolls
  // windows whose close is past send+horizon, declaring it lost.
  mon.on_send(kSid, 3, at(3'500'000'000));
  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  std::uint64_t lost = 0;
  for (const auto& w : rep->windows) lost += w.stats.lost;
  EXPECT_EQ(lost, 1u) << "unit 2 must be charged within the horizon";
  // Unit 3 is young, but finalize ends the session: still owed = lost.
  mon.finalize(kSid, at(3'600'000'000));
  EXPECT_EQ(rep->cumulative.lost, 2u);
  EXPECT_LT(rep->time_in_contract, 1.0);  // the loss windows graded bad
}

TEST(ConformanceMonitor, MulticastFanoutOwesNDeliveriesPerUnit) {
  unites::ConformanceMonitor mon;
  mantts::QosContract c = latency_contract();
  c.max_latency_ns = -1;
  c.loss_tolerance = 0.0;
  mon.register_contract(c, at(0));
  mon.set_fanout(kSid, 3);

  mon.on_send(kSid, 1, at(0));
  mon.on_delivery(kSid, 1, at(1'000'000), 1'000'000, 100, false, false);
  mon.on_delivery(kSid, 1, at(1'100'000), 1'100'000, 100, false, false);
  mon.finalize(kSid, at(10'000'000));
  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->cumulative.delivered, 2u);
  EXPECT_EQ(rep->cumulative.lost, 1u);  // the third copy never landed
  EXPECT_LT(rep->qoe, 1.0);
}

// ---------------------------------------------------------------------------
// Budget, burn rates, hysteresis, health rung
// ---------------------------------------------------------------------------

TEST(ConformanceMonitor, BreachNeedsTwoConsecutiveBadWindows) {
  unites::ConformanceMonitor mon;
  // 200-window contract: 5 bad windows burn half the budget, not all of
  // it, so the health verdict isolates the burn-rate alarm.
  mon.register_contract(latency_contract(/*duration_windows=*/200.0), at(0));
  // bad, good, bad, good, ... : never two consecutive bads.
  for (std::size_t i = 0; i < 10; ++i) feed_window(mon, i, i % 2 == 0);
  mon.finalize(kSid, at(10 * kW));
  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->breaches, 0u);
  EXPECT_EQ(rep->first_breach_ns, -1);
  // ...but the alternating stream burns budget at 10x the contract rate:
  // 2 bad of the trailing 4 windows / 0.05 = fast-burn 10 >= the alarm.
  EXPECT_GE(rep->fast_burn, 10.0);
  EXPECT_EQ(rep->health, unites::ContractHealth::kBurning);
}

TEST(ConformanceMonitor, HysteresisEntersAfterTwoBadsExitsAfterTwoCleans) {
  unites::ConformanceMonitor mon;
  mon.register_contract(latency_contract(), at(0));

  // Windows 0-2 good; 3,4 bad (=> breach at window 4's close); 5 good
  // (still in the episode); 6 good (=> recovery); 7-29 good — long enough
  // that the 16-window slow-burn horizon drains back below its alarm.
  for (std::size_t i = 0; i < 30; ++i) feed_window(mon, i, i == 3 || i == 4);

  // Feeding window 29 closed windows 0..28, so the episode is over.
  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->breaches, 1u);
  EXPECT_EQ(rep->recoveries, 1u);
  // The declaring window is the second consecutive bad: detection latency
  // is exactly two windows from the first out-of-contract window's start.
  EXPECT_EQ(rep->first_breach_ns, 3 * kW + 2 * kW);

  mon.finalize(kSid, at(30 * kW));
  EXPECT_EQ(rep->breaches, 1u);
  EXPECT_EQ(rep->windows_bad, 2u);
  EXPECT_EQ(rep->windows.size(), 30u);
  EXPECT_NEAR(rep->time_in_contract, 1.0 - 2.0 / 30.0, 1e-12);
  // Far from the breach, every burn horizon is clean again.
  EXPECT_EQ(rep->fast_burn, 0.0);
  EXPECT_EQ(rep->slow_burn, 0.0);
  EXPECT_EQ(rep->health, unites::ContractHealth::kInContract);
}

TEST(ConformanceMonitor, ExhaustedBudgetPinsHealthBreached) {
  unites::ConformanceMonitor mon;
  // Contract sized to 20 windows: budget floor is max(1, 0.05*20) = 1 bad
  // window, so the second bad window exhausts it.
  mon.register_contract(latency_contract(/*duration_windows=*/20.0), at(0));
  for (std::size_t i = 0; i < 6; ++i) feed_window(mon, i, i < 2);
  mon.finalize(kSid, at(6 * kW));
  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  EXPECT_GE(rep->budget_consumed, 1.0);
  // The episode recovered, but the budget is gone for good: the rung
  // stays breached so policy can see the contract is unsalvageable.
  EXPECT_EQ(rep->health, unites::ContractHealth::kBreached);
}

TEST(ConformanceMonitor, ReRegistrationKeepsHistoryAndGradesAgainstTheNewBounds) {
  unites::ConformanceMonitor mon;
  mon.register_contract(latency_contract(), at(0));
  for (std::size_t i = 0; i < 3; ++i) feed_window(mon, i, /*bad=*/true);

  // Renegotiated (downgrade ladder / resynthesis): 20 ms is fine now.
  mantts::QosContract looser = latency_contract();
  looser.max_latency_ns = 20'000'000;
  mon.register_contract(looser, at(3 * kW));
  EXPECT_EQ(mon.registrations(kSid), 2u);
  for (std::size_t i = 3; i < 6; ++i) feed_window(mon, i, /*bad=*/true);  // same 10 ms latency
  mon.finalize(kSid, at(6 * kW));

  const unites::SessionConformance* rep = mon.report(kSid);
  ASSERT_NE(rep, nullptr);
  ASSERT_GE(rep->windows.size(), 6u);
  EXPECT_FALSE(rep->windows[0].ok());  // graded under the 1 ms contract
  EXPECT_FALSE(rep->windows[1].ok());
  // Windows close lazily on the next event, so the window straddling the
  // re-registration (window 2 closes when window 3's event arrives) is
  // already graded under the renegotiated bounds — as are all later ones.
  EXPECT_TRUE(rep->windows[2].ok());
  EXPECT_TRUE(rep->windows[3].ok());  // same traffic, new bounds
  EXPECT_TRUE(rep->windows[4].ok());
  EXPECT_EQ(rep->registrations, 2u);
}

TEST(ConformanceMonitor, DisabledMonitorIsANoOp) {
  unites::ConformanceMonitor mon;
  mon.set_enabled(false);
  mon.register_contract(latency_contract(), at(0));
  mon.on_send(kSid, 1, at(0));
  mon.on_delivery(kSid, 1, at(1000), 1000, 100, false, false);
  mon.finalize_all(at(kW));
  EXPECT_EQ(mon.session_count(), 0u);
  EXPECT_EQ(mon.health(kSid), unites::ContractHealth::kNone);
}

TEST(ConformanceMonitor, WindowMetricsLandInTheRepository) {
  unites::MetricRepository repo;
  unites::ConformanceMonitor mon;
  mon.set_repository(&repo);
  mon.register_contract(latency_contract(), at(0));
  for (std::size_t i = 0; i < 5; ++i) feed_window(mon, i, i >= 2);
  mon.finalize(kSid, at(5 * kW));
  EXPECT_GT(repo.systemwide_sum(unites::metrics::kQosWindowOk), 0.0);
  EXPECT_GT(repo.systemwide_sum(unites::metrics::kQosBreach), 0.0);
  EXPECT_GT(repo.systemwide_sum(unites::metrics::kQosTimeInContract), 0.0);
  EXPECT_GT(repo.systemwide_sum(unites::metrics::kQosQoe), 0.0);
}

// ---------------------------------------------------------------------------
// Satellites: metric-name discipline, post-mortem delegation
// ---------------------------------------------------------------------------

TEST(ConformanceMetrics, QosFamilyFollowsTheUnitSuffixDiscipline) {
  for (const char* name :
       {unites::metrics::kQosWindowOk, unites::metrics::kQosWindowLatencyNs,
        unites::metrics::kQosWindowJitterNs, unites::metrics::kQosBudgetBurn,
        unites::metrics::kQosBreach, unites::metrics::kQosRecovery,
        unites::metrics::kQosTimeInContract, unites::metrics::kQosQoe,
        unites::metrics::kQosHealth}) {
    EXPECT_TRUE(unites::unit_suffix_ok(name)) << name;
    EXPECT_EQ(unites::classify_metric(name), unites::MetricClass::kBlackbox) << name;
  }
  EXPECT_EQ(unites::metric_unit(unites::metrics::kQosWindowLatencyNs), "ns");
  EXPECT_EQ(unites::metric_unit(unites::metrics::kQosWindowJitterNs), "ns");
  EXPECT_EQ(unites::metric_unit(unites::metrics::kQosWindowOk), "");
}

TEST(QosReport, VerdictAppendsTimeInContractOnlyForWindowedRuns) {
  app::QosReport r;
  EXPECT_EQ(r.verdict(), "PASS");  // tier-1 Table 1 semantics untouched
  r.windowed = true;
  r.time_in_contract = 0.973;
  EXPECT_EQ(r.verdict(), "PASS [in-contract 97.3%]");
  r.latency_ok = false;
  r.loss_ok = false;
  EXPECT_EQ(r.verdict(), "FAIL(latency,loss) [in-contract 97.3%]");
}

TEST(QosReport, EvaluateQosDelegatesToTheSharedGrader) {
  // The post-mortem evaluator and grade_window() must agree by
  // construction: evaluate_qos folds into a WindowStats and calls the
  // same function the live windows use.
  app::SourceStats src;
  src.units_sent = 10;
  src.bytes_sent = 1000;
  app::SinkStats sink;
  sink.units_received = 9;
  sink.bytes_received = 900;
  sink.first_arrival = sim::SimTime::seconds(1);
  sink.last_arrival = sim::SimTime::seconds(2);
  for (int i = 0; i < 9; ++i) sink.latencies_sec.push_back(0.004);

  mantts::Acd acd;
  acd.quantitative.max_latency = sim::SimTime::milliseconds(5);
  acd.quantitative.loss_tolerance = 0.2;
  acd.qualitative.sequenced_delivery = true;

  const app::QosReport r = app::evaluate_qos(acd, src, sink);
  EXPECT_TRUE(r.latency_ok);
  EXPECT_TRUE(r.loss_ok);  // 10% lost, 20% tolerated
  EXPECT_EQ(r.mean_latency_ns, 4'000'000);
  EXPECT_EQ(r.loss_fraction, 0.1);
  EXPECT_FALSE(r.windowed);

  acd.quantitative.loss_tolerance = 0.05;
  const app::QosReport strict = app::evaluate_qos(acd, src, sink);
  EXPECT_FALSE(strict.loss_ok);

  const unites::WindowStats s = app::cumulative_stats(src, sink);
  EXPECT_EQ(s.delivered, 9u);
  EXPECT_EQ(s.lost, 1u);
  EXPECT_EQ(s.span_ns, sim::SimTime::seconds(1).ns());
}

// ---------------------------------------------------------------------------
// End to end: scenario wiring, MANTTS lifecycle, NMI rung
// ---------------------------------------------------------------------------

TEST(ConformanceScenario, CleanRunStaysInContractAndFeedsEveryExport) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 91); });
  RunOptions opt;
  opt.application = app::Table1App::kVoice;
  opt.duration = sim::SimTime::seconds(4);
  opt.collect_metrics = true;
  const auto out = run_scenario(world, opt);

  ASSERT_TRUE(out.qos.windowed);
  const unites::SessionConformance& c = out.conformance;
  EXPECT_GE(c.windows.size(), 10u);  // ~16 windows over 4 s
  EXPECT_EQ(c.windows_bad, 0u);
  EXPECT_EQ(c.breaches, 0u);
  EXPECT_EQ(c.time_in_contract, 1.0);
  EXPECT_EQ(out.qos.time_in_contract, 1.0);
  EXPECT_EQ(c.health, unites::ContractHealth::kInContract);
  EXPECT_GE(c.registrations, 1u);
  EXPECT_EQ(c.qoe, 1.0);
  // The monitor's fold agrees with the sink (the oracle also checks this).
  EXPECT_EQ(c.cumulative.delivered, out.sink.units_received);
  EXPECT_TRUE(out.oracle.checked_conformance);
  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  // The verdict string now carries the time-in-contract fraction.
  EXPECT_NE(out.qos.verdict().find("[in-contract 100.0%]"), std::string::npos);
  // qos.* metrics flowed into the world repository, and MANTTS counted
  // the registration.
  EXPECT_GT(world.repository().systemwide_sum(unites::metrics::kQosWindowOk), 0.0);
  EXPECT_GE(world.mantts(0).stats().contracts_registered, 1u);
}

TEST(ConformanceScenario, ContractOverrideBreachesAndRaisesTheNmiRung) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 92); });
  RunOptions opt;
  opt.application = app::Table1App::kVoice;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  // >= 5 s: run_scenario stamps opt.duration into the ACD, and shorter
  // sessions skip adaptation entirely (Section 4.1.1) — no ticks, no rung.
  opt.duration = sim::SimTime::seconds(6);
  // An unmeetable bound: every window grades bad, the budget exhausts,
  // and the adaptation loop must observe the breached rung via the NMI.
  mantts::QosContract c;
  c.max_latency_ns = 1;
  c.max_jitter_ns = -1;
  c.loss_tolerance = 1.0;
  c.sequenced = false;
  c.duplicate_sensitive = false;
  c.duration_ns = opt.duration.ns();
  opt.qos_contract = c;
  const auto out = run_scenario(world, opt);

  ASSERT_TRUE(out.qos.windowed);
  EXPECT_GE(out.conformance.breaches, 1u);
  EXPECT_GE(out.conformance.budget_consumed, 1.0);
  EXPECT_EQ(out.conformance.health, unites::ContractHealth::kBreached);
  EXPECT_GT(out.conformance.first_breach_ns, 0);
  EXPECT_EQ(out.conformance.time_in_contract, 0.0);
  EXPECT_GT(world.mantts(0).stats().contract_breach_ticks, 0u);
}

TEST(ConformanceScenario, ReconfigurationReRegistersTheContract) {
  // The route-failover scenario: the terrestrial path dies, the RTT
  // policy moves the session onto FEC via RECONFIG — and every
  // resynthesis must re-register the contract with the monitor.
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 93); });
  RunOptions opt;
  opt.application = app::Table1App::kManufacturingControl;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.duration = sim::SimTime::seconds(12);
  opt.scale = 0.5;
  world.scheduler().schedule_after(sim::SimTime::seconds(4), [&] {
    world.network().set_link_pair_up(world.topology().scenario_links[0], false);
  });
  const auto out = run_scenario(world, opt);
  EXPECT_GT(out.reconfigurations, 0u);
  ASSERT_TRUE(out.qos.windowed);
  EXPECT_GE(out.conformance.registrations, 1u + out.reconfigurations);
}

TEST(ConformanceScenario, HandoverResynthesisReRegistersTheContract) {
  World world([](sim::EventScheduler& s) { return net::make_mobile_wan(s, 3, 3, 7); });
  RunOptions opt;
  opt.application = app::Table1App::kRemoteFileService;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::mobility_rules();
  opt.src = 1;
  opt.multicast_members = {0, 2, 3, 4};
  opt.faults = sim::parse_fault_plan(
      "handover@1.5+0.05:node=0,to=1,mode=mbb;handover@3+0.08:node=0,to=2,mode=bbm");
  opt.blackout_bound = sim::SimTime::seconds(2);
  opt.scale = 2.0;
  opt.duration = sim::SimTime::seconds(5);
  opt.drain = sim::SimTime::seconds(8);
  opt.seed = 5;
  opt.collect_metrics = true;
  const auto out = run_scenario(world, opt);
  EXPECT_EQ(out.mobility.controller.handovers_completed, 2u);
  EXPECT_GE(out.reconfigurations, 1u);
  ASSERT_TRUE(out.qos.windowed);
  EXPECT_GE(out.conformance.registrations, 2u) << "handover resynthesis must re-register";
}

// ---------------------------------------------------------------------------
// Flight recorder: qos-breach arming
// ---------------------------------------------------------------------------

TEST(ConformanceFlight, ExhaustedBudgetOnAFaultFreeRunArmsTheRecorder) {
  const auto dir = scratch_dir("qosbreach");
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, seed); };
  };
  sc.base.application = app::Table1App::kVoice;
  sc.base.duration = sim::SimTime::seconds(3);
  sc.base.collect_metrics = true;
  mantts::QosContract c;
  c.max_latency_ns = 1;  // unmeetable: the budget exhausts while fault-free
  c.max_jitter_ns = -1;
  c.loss_tolerance = 1.0;
  c.sequenced = false;
  c.duplicate_sensitive = false;
  c.duration_ns = sc.base.duration.ns();
  sc.base.qos_contract = c;
  sc.seeds = {21};
  sc.flight_recorder_dir = dir.string();

  const SweepResult res = run_sweep(sc);
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].violations, 0u) << res.runs[0].violation_detail;
  EXPECT_GE(res.runs[0].qos_budget_consumed, 1.0);
  EXPECT_EQ(res.flight_bundles, 1u);

  const auto bundle_path = dir / "flight-seed21.json";
  ASSERT_TRUE(std::filesystem::exists(bundle_path));
  const std::string bundle = slurp(bundle_path);
  EXPECT_NE(bundle.find("\"reason\":\"qos-breach\""), std::string::npos);
  EXPECT_NE(bundle.find("\"conformance\":{"), std::string::npos);
  EXPECT_NE(bundle.find("\"time_in_contract\":"), std::string::npos);
  EXPECT_NE(bundle.find("\"windows\":["), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ConformanceFlight, HealthyRunDoesNotArm) {
  const auto dir = scratch_dir("healthy");
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, seed); };
  };
  sc.base.application = app::Table1App::kVoice;
  sc.base.duration = sim::SimTime::seconds(2);
  sc.seeds = {22};
  sc.flight_recorder_dir = dir.string();
  const SweepResult res = run_sweep(sc);
  EXPECT_EQ(res.flight_bundles, 0u);
  EXPECT_FALSE(std::filesystem::exists(dir / "flight-seed22.json"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Determinism: 64 seeds, jobs=1 vs jobs=8, byte identity
// ---------------------------------------------------------------------------

TEST(ConformanceDeterminism, SixtyFourSeedSweepIsJobsInvariant) {
  const auto config = [](std::size_t jobs) {
    SweepConfig sc;
    sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
      return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, seed); };
    };
    sc.base.application = app::Table1App::kVoice;
    sc.base.duration = sim::SimTime::seconds(2);
    sc.base.drain = sim::SimTime::seconds(1);
    sc.base.collect_metrics = true;
    // A mid-run latency spike makes the conformance plane earn its keep:
    // every seed crosses breach -> recovery, so the determinism gate
    // covers the full verdict machinery, not just clean windows.
    sc.base.faults = sim::parse_fault_plan("delay@0.5+0.5:link=0,add=0.05");
    mantts::QosContract c;
    c.max_latency_ns = 30'000'000;
    c.max_jitter_ns = -1;
    c.loss_tolerance = 1.0;
    c.sequenced = false;
    c.duplicate_sensitive = false;
    c.duration_ns = sc.base.duration.ns();
    sc.base.qos_contract = c;
    sc.capture_trace = true;
    sc.capture_timeline = true;
    sc.jobs = jobs;
    for (std::uint64_t s = 1; s <= 64; ++s) sc.seeds.push_back(s);
    return sc;
  };

  const SweepResult serial = run_sweep(config(1));
  const SweepResult parallel = run_sweep(config(8));

  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  std::size_t breached_seeds = 0;
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    const SweepRunSummary& a = serial.runs[i];
    const SweepRunSummary& b = parallel.runs[i];
    EXPECT_EQ(a.time_in_contract, b.time_in_contract) << "seed " << a.seed;
    EXPECT_EQ(a.qos_windows, b.qos_windows);
    EXPECT_EQ(a.qos_windows_bad, b.qos_windows_bad);
    EXPECT_EQ(a.qos_breaches, b.qos_breaches);
    EXPECT_EQ(a.qos_budget_consumed, b.qos_budget_consumed);
    EXPECT_EQ(a.qoe, b.qoe);
    EXPECT_EQ(a.first_breach_ns, b.first_breach_ns);
    if (a.qos_breaches > 0) ++breached_seeds;
  }
  EXPECT_GT(breached_seeds, 0u) << "the spike must actually exercise the breach path";

  // The merged qos/resource timeline (Chrome counter source) must be
  // byte-identical too, including the qos.* gauge tracks.
  std::ostringstream tl_serial, tl_parallel;
  unites::write_timeline_jsonl(tl_serial, serial.timeline);
  unites::write_timeline_jsonl(tl_parallel, parallel.timeline);
  EXPECT_EQ(tl_serial.str(), tl_parallel.str());
  EXPECT_NE(tl_serial.str().find("qos.budget_burn"), std::string::npos);
  EXPECT_NE(tl_serial.str().find("qos.qoe"), std::string::npos);
}

}  // namespace
}  // namespace adaptive
