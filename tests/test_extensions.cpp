// Tests for the extension features and resilience paths: priority
// delivery, probe-based RTT measurement, duration-gated adaptation, the
// protocol graph, negotiation failure handling, and failure injection
// (link flaps, lost control traffic).
#include "adaptive/scenario.hpp"
#include "app/playout.hpp"
#include "app/workloads.hpp"
#include "mantts/mantts.hpp"
#include "mantts/stream_group.hpp"
#include "net/background_traffic.hpp"
#include "tko/protocol_graph.hpp"

#include <gtest/gtest.h>

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// Priority delivery (Table 1 "Priority Delivery" column)
// ---------------------------------------------------------------------------

TEST(Priority, HighPriorityPacketsOvertakeInQueues) {
  sim::EventScheduler sched;
  net::Network net(sched, 3);
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net::LinkConfig cfg;
  cfg.bandwidth = sim::Rate::mbps(8);  // 1000B wire = 1ms
  cfg.propagation_delay = sim::SimTime::zero();
  cfg.queue_capacity_packets = 64;
  net.connect(a, b, cfg);

  std::vector<std::uint8_t> order;
  net.set_host_rx(b, [&](net::Packet&& p) { order.push_back(p.priority); });

  // Ten low-priority packets, then one high-priority: the high one must
  // overtake everything still queued (but not the one in service).
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.src = {a, 1};
    p.dst = {b, 1};
    p.priority = 0;
    p.payload = tko::Message::filled(972, 1);
    net.inject(std::move(p));
  }
  net::Packet hi;
  hi.src = {a, 1};
  hi.dst = {b, 1};
  hi.priority = 5;
  hi.payload = tko::Message::filled(972, 2);
  net.inject(std::move(hi));
  sched.run();
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order[0], 0);  // already serializing when the high one arrived
  EXPECT_EQ(order[1], 5);  // overtook the remaining nine
}

TEST(Priority, FullQueueDisplacesLowestPriority) {
  sim::EventScheduler sched;
  net::Network net(sched, 3);
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net::LinkConfig cfg;
  cfg.bandwidth = sim::Rate::mbps(8);
  cfg.propagation_delay = sim::SimTime::zero();
  cfg.queue_capacity_packets = 4;
  net.connect(a, b, cfg);

  int high_received = 0, low_received = 0;
  net.set_host_rx(b, [&](net::Packet&& p) { (p.priority > 0 ? high_received : low_received)++; });

  for (int i = 0; i < 5; ++i) {  // 1 in service + 4 queued (all low)
    net::Packet p;
    p.src = {a, 1};
    p.dst = {b, 1};
    p.payload = tko::Message::filled(972, 1);
    net.inject(std::move(p));
  }
  for (int i = 0; i < 2; ++i) {  // two high arrivals displace two low
    net::Packet p;
    p.src = {a, 1};
    p.dst = {b, 1};
    p.priority = 3;
    p.payload = tko::Message::filled(972, 2);
    net.inject(std::move(p));
  }
  sched.run();
  EXPECT_EQ(high_received, 2);
  EXPECT_EQ(low_received, 3);  // two displaced
  EXPECT_EQ(net.link(0).stats().queue_drops, 2u);
}

TEST(Priority, VoiceSessionProtectedFromBulkOnSharedLink) {
  // Priority voice and non-priority bulk share a congested backbone; the
  // voice session's latency must stay near the uncongested floor.
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 41); });

  // Saturating low-priority cross traffic.
  net::BackgroundTrafficConfig bg;
  bg.src = {world.node(2), 9};
  bg.dst = {world.node(3), 9};
  bg.burst_rate = sim::Rate::mbps(1.6);
  bg.always_on = true;
  net::BackgroundTraffic cross(world.network(), bg, 5);
  cross.start();

  auto run_voice = [&](std::uint8_t priority) {
    auto cfg = tko::sa::lightweight_isochronous_config();
    cfg.inter_pdu_gap = sim::SimTime::milliseconds(18);
    cfg.segment_bytes = 176;
    cfg.priority = priority;
    RunOptions opt;
    opt.application = app::Table1App::kVoice;
    opt.mode = RunOptions::Mode::kFixedConfig;
    opt.fixed = cfg;
    opt.duration = sim::SimTime::seconds(4);
    opt.seed = 42;
    return run_scenario(world, opt);
  };
  const auto unprioritized = run_voice(0);
  const auto prioritized = run_voice(3);
  cross.stop();

  EXPECT_GT(unprioritized.qos.mean_latency_ns, 50'000'000);  // stuck behind the full queue
  EXPECT_LT(prioritized.qos.mean_latency_ns, 50'000'000);    // jumps it
  EXPECT_LT(prioritized.qos.loss_fraction, 0.01);       // and displaces, not drops
}

// ---------------------------------------------------------------------------
// Probe-based RTT measurement
// ---------------------------------------------------------------------------

TEST(Probes, ProbeReplyFeedsNmiEstimator) {
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 51); });
  auto& entity = world.mantts(0);
  const auto remote = world.node(1);

  EXPECT_EQ(entity.nmi().probe_samples(remote), 0u);
  entity.send_probe(remote);
  world.run_for(sim::SimTime::seconds(1));
  EXPECT_EQ(entity.stats().probes_sent, 1u);
  EXPECT_EQ(entity.stats().probe_replies, 1u);
  EXPECT_EQ(entity.nmi().probe_samples(remote), 1u);

  // The measured RTT now drives the descriptor and tracks the real path.
  const auto d = entity.nmi().sample(remote);
  EXPECT_GT(d.rtt, sim::SimTime::milliseconds(20));
  EXPECT_LT(d.rtt, sim::SimTime::milliseconds(100));
}

TEST(Probes, MeasuredRttTracksRouteFailover) {
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 52); });
  auto& entity = world.mantts(0);
  const auto remote = world.node(1);

  for (int i = 0; i < 8; ++i) {
    entity.send_probe(remote);
    world.run_for(sim::SimTime::milliseconds(200));
  }
  const auto before = entity.nmi().sample(remote).rtt;
  EXPECT_LT(before, sim::SimTime::milliseconds(100));

  world.network().set_link_pair_up(world.topology().scenario_links[0], false);
  for (int i = 0; i < 32; ++i) {
    entity.send_probe(remote);
    world.run_for(sim::SimTime::milliseconds(400));
  }
  const auto after = entity.nmi().sample(remote).rtt;
  EXPECT_GT(after, sim::SimTime::milliseconds(300));  // converged toward ~520ms
}

TEST(Probes, AdaptationCanRunOnMeasuredRtt) {
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 53); });
  world.mantts(0).set_probe_based_rtt(true);

  RunOptions opt;
  opt.application = app::Table1App::kManufacturingControl;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.duration = sim::SimTime::seconds(14);
  opt.scale = 0.5;
  world.scheduler().schedule_after(sim::SimTime::seconds(4), [&] {
    world.network().set_link_pair_up(world.topology().scenario_links[0], false);
  });
  const auto out = run_scenario(world, opt);
  // The kRttAbove policy fired from measured probes, not the oracle.
  EXPECT_GT(world.mantts(0).stats().probes_sent, 10u);
  EXPECT_EQ(out.config.recovery, tko::sa::RecoveryScheme::kForwardErrorCorrection);
}

// ---------------------------------------------------------------------------
// Duration gating (Section 4.1.1: short sessions are not worth adapting)
// ---------------------------------------------------------------------------

TEST(DurationGate, ShortSessionsSkipAdaptation) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 55); });
  mantts::Acd acd;
  acd.remotes = {world.transport_address(1)};
  acd.quantitative.duration = sim::SimTime::seconds(1);  // below threshold
  acd.quantitative.loss_tolerance = 0.1;
  acd.qualitative.sequenced_delivery = false;
  acd.adjustments = mantts::PolicyEngine::default_rules();

  tko::TransportSession* session = nullptr;
  world.mantts(0).open_session(acd, [&](auto r) { session = r.session; });
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(world.mantts(0).adaptation_enabled(*session));
  EXPECT_EQ(world.mantts(0).stats().adaptations_skipped_short_session, 1u);

  acd.quantitative.duration = sim::SimTime::seconds(600);
  tko::TransportSession* long_session = nullptr;
  world.mantts(0).open_session(acd, [&](auto r) { long_session = r.session; });
  world.run_for(sim::SimTime::seconds(1));  // explicit negotiation round trip
  ASSERT_NE(long_session, nullptr);
  EXPECT_TRUE(world.mantts(0).adaptation_enabled(*long_session));
}

// ---------------------------------------------------------------------------
// Protocol graph (TKO_Protocol graph operations, Section 4.2.1)
// ---------------------------------------------------------------------------

class StubProtocol final : public tko::Protocol {
public:
  explicit StubProtocol(std::string name) : Protocol(std::move(name)) {}
  void demux(net::Packet&&) override { ++packets_; }
  [[nodiscard]] std::size_t session_count() const override { return 0; }
  int packets_ = 0;
};

TEST(ProtocolGraph, InsertLayerQueryRemove) {
  tko::ProtocolGraph graph;
  graph.insert(std::make_unique<StubProtocol>("transport"));
  graph.insert(std::make_unique<StubProtocol>("network"));
  graph.insert(std::make_unique<StubProtocol>("mac"));
  graph.layer("transport", "network");
  graph.layer("network", "mac");

  EXPECT_EQ(graph.size(), 3u);
  EXPECT_NE(graph.find("network"), nullptr);
  EXPECT_EQ(graph.below("transport"), std::vector<std::string>{"network"});
  EXPECT_EQ(graph.above("mac"), std::vector<std::string>{"network"});

  const auto order = graph.bottom_up_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(std::find(order.begin(), order.end(), "mac") - order.begin(),
            std::find(order.begin(), order.end(), "transport") - order.begin());

  graph.remove("network");
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_TRUE(graph.below("transport").empty());
  EXPECT_THROW(graph.remove("network"), std::invalid_argument);
}

TEST(ProtocolGraph, ReplaceKeepsEdges) {
  tko::ProtocolGraph graph;
  graph.insert(std::make_unique<StubProtocol>("transport"));
  graph.insert(std::make_unique<StubProtocol>("network"));
  graph.layer("transport", "network");
  auto& replaced = graph.replace("network", std::make_unique<StubProtocol>("network"));
  EXPECT_EQ(graph.below("transport"), std::vector<std::string>{"network"});
  EXPECT_EQ(&replaced, graph.find("network"));
  EXPECT_THROW(graph.replace("network", std::make_unique<StubProtocol>("other")),
               std::invalid_argument);
}

TEST(ProtocolGraph, DetectsLayeringCycles) {
  tko::ProtocolGraph graph;
  graph.insert(std::make_unique<StubProtocol>("a"));
  graph.insert(std::make_unique<StubProtocol>("b"));
  graph.layer("a", "b");
  graph.layer("b", "a");
  EXPECT_THROW((void)graph.bottom_up_order(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Negotiation failure handling & admission refusal
// ---------------------------------------------------------------------------

TEST(NegotiationFailure, UnreachablePeerYieldsRefusalAfterRetries) {
  // Host 1 exists but its MANTTS entity is unreachable: sever the link so
  // CONFIG retries exhaust.
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 57); });
  world.network().set_link_pair_up(world.topology().scenario_links[1], false);

  mantts::Acd acd;
  acd.remotes = {world.transport_address(1)};
  acd.qualitative.explicit_connection = true;
  acd.quantitative.duration = sim::SimTime::seconds(600);

  bool done = false;
  mantts::MantttsEntity::OpenResult result;
  world.mantts(0).open_session(acd, [&](auto r) {
    result = std::move(r);
    done = true;
  });
  world.run_for(sim::SimTime::seconds(5));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.refused);
  EXPECT_EQ(result.session, nullptr);
  EXPECT_EQ(world.mantts(0).stats().refusals_received, 1u);
}

TEST(NegotiationFailure, OverCapacityResponderRefuses) {
  mantts::ResourceLimits tiny;
  tiny.max_sessions = 0;  // responder accepts nothing
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 58); },
              os::CpuConfig{}, tiny);
  mantts::Acd acd;
  acd.remotes = {world.transport_address(1)};
  acd.qualitative.explicit_connection = true;
  acd.quantitative.duration = sim::SimTime::seconds(600);

  mantts::MantttsEntity::OpenResult result;
  bool done = false;
  world.mantts(0).open_session(acd, [&](auto r) {
    result = std::move(r);
    done = true;
  });
  world.run_for(sim::SimTime::seconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.refused);
  EXPECT_EQ(world.mantts(1).stats().admissions_refused, 1u);
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(FailureInjection, ReliableTransferSurvivesLinkFlap) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 59); });
  std::size_t received = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { received += m.size(); });
  });
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.window_pdus = 8;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(200'000, 9),
                                        &world.host(0).buffers()));
  // The destination's access link flaps twice mid-transfer.
  const auto link = world.topology().scenario_links[1];
  world.scheduler().schedule_after(sim::SimTime::milliseconds(30), [&] {
    world.network().set_link_pair_up(link, false);
  });
  world.scheduler().schedule_after(sim::SimTime::milliseconds(300), [&] {
    world.network().set_link_pair_up(link, true);
  });
  world.scheduler().schedule_after(sim::SimTime::milliseconds(500), [&] {
    world.network().set_link_pair_up(link, false);
  });
  world.scheduler().schedule_after(sim::SimTime::milliseconds(900), [&] {
    world.network().set_link_pair_up(link, true);
  });
  world.run_for(sim::SimTime::seconds(30));
  EXPECT_EQ(received, 200'000u);  // retransmission covers the outages
  EXPECT_GT(session.context().reliability().stats().retransmissions, 0u);
}

TEST(FailureInjection, GracefulCloseSurvivesLostFinAck) {
  // Take the link down just as the FIN exchange begins; the FIN
  // retransmits after the link heals and the session still closes.
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 60); });
  auto cfg = tko::sa::reliable_bulk_config();
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(5'000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));  // transfer done, acks in

  const auto link = world.topology().scenario_links[0];
  world.network().set_link_pair_up(link, false);
  session.close(/*graceful=*/true);  // FIN dies on the dark link
  world.run_for(sim::SimTime::milliseconds(500));
  EXPECT_EQ(session.state(), tko::SessionState::kClosing);
  world.network().set_link_pair_up(link, true);
  world.run_for(sim::SimTime::seconds(10));
  EXPECT_EQ(session.state(), tko::SessionState::kClosed);
}

TEST(FailureInjection, HandshakeGivesUpWhenPeerNeverAnswers) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 61); });
  world.network().set_link_pair_up(world.topology().scenario_links[1], false);
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::tcp_compat_config());
  session.connect();
  world.run_for(sim::SimTime::seconds(30));
  EXPECT_EQ(session.state(), tko::SessionState::kAborted);
}

// ---------------------------------------------------------------------------
// NIC offload (Section 3B remedy category 3)
// ---------------------------------------------------------------------------

TEST(Offload, ChecksumOffloadCutsHostCpuWithoutLosingDetection) {
  auto run = [&](bool offload) {
    os::NicConfig nic;
    nic.checksum_offload = offload;
    World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 1, 69); },
                os::CpuConfig{}, mantts::ResourceLimits{}, nic);
    RunOptions opt;
    opt.application = app::Table1App::kFileTransfer;
    opt.mode = RunOptions::Mode::kFixedConfig;
    auto cfg = tko::sa::reliable_bulk_config();
    cfg.connection = tko::sa::ConnectionScheme::kImplicit;
    cfg.window_pdus = 12;
    opt.fixed = cfg;
    opt.scale = 0.1;
    opt.duration = sim::SimTime::seconds(30);
    opt.drain = sim::SimTime::seconds(15);
    opt.seed = 70;
    return run_scenario(world, opt);
  };
  const auto plain = run(false);
  const auto offloaded = run(true);
  // Same bytes delivered; corruption on the copper backbone still caught
  // (decode always verifies — offload only waives the host CPU charge).
  EXPECT_EQ(plain.sink.bytes_received, offloaded.sink.bytes_received);
  EXPECT_GT(plain.receiver_checksum_failures + plain.reliability.retransmissions, 0u);
  EXPECT_LT(offloaded.sender_cpu_instructions, plain.sender_cpu_instructions);
}

// ---------------------------------------------------------------------------
// Synchronized stream groups (Section 4.1: coordinated related sessions)
// ---------------------------------------------------------------------------

TEST(StreamGroups, AssignsClassPrioritiesAndCommonPlayout) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 65); });
  auto audio = app::make_workload(app::Table1App::kVoice, 1).acd;
  // Full-rate video so Stage I classifies it distributional (no traffic
  // actually flows in this test).
  auto video = app::make_workload(app::Table1App::kVideoCompressed, 1).acd;
  auto files = app::make_workload(app::Table1App::kFileTransfer, 1).acd;
  for (auto* acd : {&audio, &video, &files}) {
    acd->remotes = {world.transport_address(1)};
  }

  mantts::StreamGroupOpener opener(world.mantts(0));
  mantts::StreamGroupResult group;
  opener.open({audio, video, files}, [&](mantts::StreamGroupResult r) { group = std::move(r); });
  world.run_for(sim::SimTime::seconds(2));  // explicit members may negotiate

  ASSERT_TRUE(group.complete);
  ASSERT_EQ(group.members.size(), 3u);
  // Interactive audio above distributional video above bulk.
  EXPECT_EQ(group.members[0].assigned_priority, 5);
  EXPECT_EQ(group.members[1].assigned_priority, 3);
  EXPECT_EQ(group.members[2].assigned_priority, 0);
  for (const auto& m : group.members) {
    EXPECT_EQ(m.session->config().priority, m.assigned_priority);
  }
  // The common playout point covers the path plus the jitter margin.
  EXPECT_GE(group.recommended_playout, mantts::StreamGroupOpener::kJitterMargin);
  EXPECT_LT(group.recommended_playout, sim::SimTime::milliseconds(200));
}

TEST(StreamGroups, SynchronizedPlayoutKeepsStreamsInStep) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 66); });
  // Cross traffic so the two streams see different queueing jitter.
  net::BackgroundTrafficConfig bg;
  bg.src = {world.node(2), 9};
  bg.dst = {world.node(3), 9};
  bg.burst_rate = sim::Rate::mbps(1.0);
  bg.mean_burst = sim::SimTime::milliseconds(60);
  bg.mean_idle = sim::SimTime::milliseconds(140);
  net::BackgroundTraffic cross(world.network(), bg, 7);
  cross.start();

  auto audio = app::make_workload(app::Table1App::kVoice, 2).acd;
  auto video = app::make_workload(app::Table1App::kVideoCompressed, 2, 0.1).acd;
  audio.remotes = video.remotes = {world.transport_address(1)};

  mantts::StreamGroupOpener opener(world.mantts(0));
  mantts::StreamGroupResult group;
  opener.open({audio, video}, [&](mantts::StreamGroupResult r) { group = std::move(r); });
  world.run_for(sim::SimTime::seconds(2));
  ASSERT_TRUE(group.complete);

  // Both receivers play against the SAME recommended playout point.
  app::PlayoutSink audio_out(world.host(1).timers(), group.recommended_playout);
  app::PlayoutSink video_out(world.host(1).timers(), group.recommended_playout);
  auto* audio_rx = world.transport(1).find_session(group.members[0].session->id());
  auto* video_rx = world.transport(1).find_session(group.members[1].session->id());
  // Implicit members create their passive sessions with the first data
  // PDU; attach via the acceptor for those.
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    if (s.id() == group.members[0].session->id()) audio_out.attach(s);
    if (s.id() == group.members[1].session->id()) video_out.attach(s);
  });
  if (audio_rx != nullptr) audio_out.attach(*audio_rx);
  if (video_rx != nullptr) video_out.attach(*video_rx);

  app::SourceApp audio_src(*group.members[0].session,
                           std::make_unique<app::CbrModel>(160, sim::SimTime::milliseconds(20)),
                           world.host(0).timers(), sim::SimTime::seconds(4));
  app::SourceApp video_src(*group.members[1].session,
                           std::make_unique<app::CbrModel>(800, sim::SimTime::milliseconds(40)),
                           world.host(0).timers(), sim::SimTime::seconds(4));
  audio_src.start();
  video_src.start();
  world.run_for(sim::SimTime::seconds(5));
  cross.stop();

  // Temporal synchronization: both streams rendered at their source clock
  // plus the shared delay, so residual jitter — and hence inter-stream
  // skew — is (virtually) zero despite different per-stream network jitter.
  EXPECT_GT(audio_out.stats().played, 150u);
  EXPECT_GT(video_out.stats().played, 80u);
  EXPECT_LT(audio_out.stats().playout_jitter_sec(), 1e-6);
  EXPECT_LT(video_out.stats().playout_jitter_sec(), 1e-6);
}

// ---------------------------------------------------------------------------
// Adjust-the-TSC reconfiguration (Section 4.1.2, first action)
// ---------------------------------------------------------------------------

TEST(AdjustTsc, RetargetSessionRunsStagesAgainAndPropagates) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 77); });

  // Start as a reliable bulk application...
  auto bulk = app::make_workload(app::Table1App::kFileTransfer, 1).acd;
  bulk.remotes = {world.transport_address(1)};
  bulk.quantitative.duration = sim::SimTime::seconds(600);
  tko::TransportSession* session = nullptr;
  mantts::Tsc initial_tsc{};
  world.mantts(0).open_session(bulk, [&](auto r) {
    session = r.session;
    initial_tsc = r.tsc;
  });
  world.run_for(sim::SimTime::seconds(1));
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(initial_tsc, mantts::Tsc::kNonRealTimeNonIsochronous);
  const auto before = session->config();
  EXPECT_NE(before.recovery, tko::sa::RecoveryScheme::kNone);

  // ...then the application "changes video coding schemes and now
  // requires isochronous service" (the paper's adjust-TSC example).
  auto media = app::make_workload(app::Table1App::kVoice, 1).acd;
  media.remotes = bulk.remotes;
  const auto new_tsc = world.mantts(0).retarget_session(*session, media);
  world.run_for(sim::SimTime::seconds(1));

  EXPECT_EQ(new_tsc, mantts::Tsc::kInteractiveIsochronous);
  EXPECT_EQ(session->config().recovery, tko::sa::RecoveryScheme::kNone);
  EXPECT_EQ(session->config().transmission, tko::sa::TransmissionScheme::kRateControl);
  // The establishment scheme of a live connection is preserved.
  EXPECT_EQ(session->config().connection, before.connection);
  EXPECT_GT(session->context().reconfigurations(), 0u);
  // Remote bindings followed via RECONFIG signaling.
  auto* passive = world.transport(1).find_session(session->id());
  ASSERT_NE(passive, nullptr);
  EXPECT_EQ(passive->config().recovery, tko::sa::RecoveryScheme::kNone);
}

// ---------------------------------------------------------------------------
// Interpreter trace
// ---------------------------------------------------------------------------

TEST(Trace, RecordsPduInterpreterSteps) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 67); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  session.enable_trace(1000);
  world.transport(1).set_acceptor(
      [](tko::TransportSession& s) { s.set_deliver([](tko::Message&&) {}); });
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(5000, 1),
                                        &world.host(0).buffers()));
  session.close(true);
  world.run_for(sim::SimTime::seconds(2));

  const auto& trace = session.trace();
  ASSERT_FALSE(trace.empty());
  bool saw_out_data = false, saw_in_ack = false, saw_fin = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(trace[i].when, trace[i - 1].when);  // chronological
    }
    if (trace[i].outbound && trace[i].type == tko::PduType::kData) saw_out_data = true;
    if (!trace[i].outbound && trace[i].type == tko::PduType::kAck) saw_in_ack = true;
    if (trace[i].type == tko::PduType::kFin) saw_fin = true;
  }
  EXPECT_TRUE(saw_out_data);
  EXPECT_TRUE(saw_in_ack);
  EXPECT_TRUE(saw_fin);

  const auto rendered = session.render_trace();
  EXPECT_NE(rendered.find("DATA"), std::string::npos);
  EXPECT_NE(rendered.find("ACK"), std::string::npos);
  EXPECT_NE(rendered.find("->"), std::string::npos);
  EXPECT_NE(rendered.find("<-"), std::string::npos);
}

TEST(Trace, CapacityBoundsTheRing) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 68); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  session.enable_trace(8);
  world.transport(1).set_acceptor(
      [](tko::TransportSession& s) { s.set_deliver([](tko::Message&&) {}); });
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(50'000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_EQ(session.trace().size(), 8u);  // only the most recent retained
  session.disable_trace();
}

}  // namespace
}  // namespace adaptive
