// Fault-injection and adaptive-recovery tests: the serial-number
// arithmetic and RTO-backoff fixes that make long-lived sessions survive
// faults, the fault-plan DSL and injector, the NMI degraded bit, the QoS
// downgrade ladder, and the end-to-end scripted-fault scenario (link flaps
// + burst corruption must provoke renegotiation and segues while every
// application byte still arrives exactly once).
#include "adaptive/scenario.hpp"
#include "mantts/nmi.hpp"
#include "mantts/policy.hpp"
#include "net/fault_injector.hpp"
#include "sim/fault_plan.hpp"
#include "tko/sa/gbn.hpp"
#include "tko/sa/reliability.hpp"
#include "tko/sa/rtt_estimator.hpp"
#include "tko/sa/selective_repeat.hpp"
#include "tko/sa/seqnum.hpp"
#include "tko/sa/sequencing.hpp"
#include "tko/sa/synthesizer.hpp"
#include "tko/sa/ack_strategy.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

namespace adaptive {
namespace {

using tko::sa::seq_geq;
using tko::sa::seq_gt;
using tko::sa::seq_leq;
using tko::sa::seq_lt;
using tko::sa::seq_max;
using tko::sa::seq_min;

constexpr std::uint32_t kTop = std::numeric_limits<std::uint32_t>::max();

// ---------------------------------------------------------------------------
// RttEstimator: a fresh sample must clear timeout backoff (Karn/Partridge).
// ---------------------------------------------------------------------------

TEST(RttEstimatorFault, FreshSampleClearsBackoff) {
  tko::sa::RttEstimator rtt(sim::SimTime::milliseconds(200));
  rtt.backoff();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(800));
  // Regression: sample() used to leave backoff_shift_ in place, so the
  // first post-loss RTO stayed multiplied even though the loss episode
  // was demonstrably over.
  rtt.sample(sim::SimTime::milliseconds(100));
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(300));  // srtt + 4*rttvar, no shift
}

// ---------------------------------------------------------------------------
// Serial-number arithmetic (RFC 1982 style)
// ---------------------------------------------------------------------------

TEST(Seqnum, OrdersPlainValues) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_FALSE(seq_lt(2, 1));
  EXPECT_FALSE(seq_lt(7, 7));
  EXPECT_TRUE(seq_leq(7, 7));
  EXPECT_TRUE(seq_gt(9, 3));
  EXPECT_TRUE(seq_geq(3, 3));
  EXPECT_EQ(seq_max(4, 9), 9u);
  EXPECT_EQ(seq_min(4, 9), 4u);
}

TEST(Seqnum, OrdersAcrossTheWrapPoint) {
  // 0 is the successor of UINT32_MAX, even though it is numerically below.
  EXPECT_TRUE(seq_lt(kTop, 0));
  EXPECT_FALSE(seq_lt(0, kTop));
  EXPECT_TRUE(seq_lt(kTop - 5, 3));
  EXPECT_TRUE(seq_leq(kTop, kTop));
  EXPECT_TRUE(seq_gt(2, kTop - 2));
  EXPECT_TRUE(seq_geq(0, kTop));
  EXPECT_EQ(seq_max(kTop, 1), 1u);
  EXPECT_EQ(seq_min(kTop, 1), kTop);
}

TEST(Seqnum, SeqLessSortsSerially) {
  std::vector<std::uint32_t> v = {1, kTop, 0, kTop - 1};
  std::sort(v.begin(), v.end(), tko::sa::SeqLess{});
  EXPECT_EQ(v, (std::vector<std::uint32_t>{kTop - 1, kTop, 0, 1}));
}

}  // namespace
}  // namespace adaptive

// The mechanism-level wraparound tests drive GBN/SR through a fake
// SessionCore, same idiom as test_mechanisms.cpp.
namespace adaptive::tko::sa {
namespace {

class FakeCore final : public SessionCore {
public:
  FakeCore() : timers_(sched) {}

  void emit(Pdu&& p) override { emitted.push_back(std::move(p)); }
  void deliver(Message&& m) override { delivered.push_back(m.linearize()); }
  os::TimerFacility& timers() override { return timers_; }
  os::BufferPool& buffers() override { return pool_; }
  [[nodiscard]] sim::SimTime now() const override { return sched.now(); }
  [[nodiscard]] std::size_t receiver_count() const override { return 1; }
  void tx_ready() override {}
  void connection_established() override {}
  void connection_closed(bool) override {}
  void loss_signal() override {}
  void count(std::string_view, double) override {}

  sim::EventScheduler sched;
  os::TimerFacility timers_;
  os::BufferPool pool_;
  std::vector<Pdu> emitted;
  std::vector<std::vector<std::uint8_t>> delivered;
};

Message msg(std::uint8_t tag) { return Message::from_bytes(std::vector<std::uint8_t>{tag}); }

Pdu ack_pdu(std::uint32_t cum) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = cum;
  return p;
}

/// Sender state positioned two sequences before the wrap point.
ReliabilityState near_wrap_sender() {
  ReliabilityState st;
  st.next_seq = kTop - 1;
  st.send_base = kTop - 1;
  st.rcv_cum = kTop - 2;
  return st;
}

TEST(SeqnumWrap, GbnSenderCrossesWrapUnderCumulativeAcks) {
  FakeCore core;
  ImmediateAck ack;
  PassThrough seq;
  ack.attach(core);
  seq.attach(core);
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.wire(&ack, &seq);
  gbn.restore(near_wrap_sender());

  for (std::uint8_t i = 0; i < 4; ++i) gbn.send_data(msg(i));
  ASSERT_EQ(core.emitted.size(), 4u);
  EXPECT_EQ(core.emitted[0].seq, kTop - 1);
  EXPECT_EQ(core.emitted[1].seq, kTop);
  EXPECT_EQ(core.emitted[2].seq, 0u);
  EXPECT_EQ(core.emitted[3].seq, 1u);
  EXPECT_EQ(gbn.in_flight(), 4u);

  // A cumulative ack numerically *below* the outstanding sequences must
  // still release everything up to it — 1 succeeds UINT32_MAX serially.
  EXPECT_EQ(gbn.on_ack(ack_pdu(kTop), 9), 2u);
  EXPECT_EQ(gbn.in_flight(), 2u);
  EXPECT_EQ(gbn.on_ack(ack_pdu(1), 9), 2u);
  EXPECT_TRUE(gbn.all_acked());
}

TEST(SeqnumWrap, GbnReceiverDeliversInOrderAcrossWrap) {
  FakeCore core;
  ImmediateAck ack;
  PassThrough seq;
  ack.attach(core);
  seq.attach(core);
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.wire(&ack, &seq);
  gbn.restore(near_wrap_sender());

  for (std::uint32_t s : {kTop - 1, kTop, 0u, 1u}) {
    Pdu p;
    p.type = PduType::kData;
    p.seq = s;
    p.payload = msg(1);
    gbn.on_data(std::move(p), 9);
  }
  EXPECT_EQ(core.delivered.size(), 4u);
  EXPECT_EQ(core.emitted.back().ack, 1u);  // cumulative ack crossed the wrap

  // Pre-wrap duplicate: numerically above the new cum, serially below it.
  Pdu dup;
  dup.type = PduType::kData;
  dup.seq = kTop;
  dup.payload = msg(1);
  gbn.on_data(std::move(dup), 9);
  EXPECT_EQ(core.delivered.size(), 4u);
  EXPECT_EQ(gbn.stats().duplicates_received, 1u);
}

TEST(SeqnumWrap, SelectiveRepeatBuffersAndNacksAcrossWrap) {
  FakeCore core;
  ImmediateAck ack;
  Resequencer seq;
  ack.attach(core);
  seq.attach(core);
  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  sr.wire(&ack, &seq);
  sr.restore(near_wrap_sender());
  SequencingState ss;
  ss.next_deliver = kTop - 1;  // position the resequencer at the same point
  seq.restore(std::move(ss));

  auto data = [&](std::uint32_t s) {
    Pdu p;
    p.type = PduType::kData;
    p.seq = s;
    p.payload = msg(1);
    sr.on_data(std::move(p), 9);
  };
  data(kTop - 1);
  data(1);  // gap at kTop and 0: both straddle the wrap
  EXPECT_EQ(core.delivered.size(), 1u);
  std::size_t nacks = 0;
  for (const auto& p : core.emitted) {
    if (p.type == PduType::kNack) ++nacks;
  }
  EXPECT_GE(nacks, 1u);  // the wrap-straddling gap was NACKed, not ignored
  data(kTop);
  data(0);
  EXPECT_EQ(core.delivered.size(), 4u);  // resequencer released the buffer
}

// ---------------------------------------------------------------------------
// Segue with in-flight unacked data: nothing lost, nothing duplicated.
// ---------------------------------------------------------------------------

TEST(SegueFault, InFlightDataSurvivesSegueLosslessly) {
  FakeCore tx_core, rx_core;
  ImmediateAck tx_ack, rx_ack;
  PassThrough tx_seq;
  Resequencer rx_seq;
  tx_ack.attach(tx_core);
  tx_seq.attach(tx_core);
  rx_ack.attach(rx_core);
  rx_seq.attach(rx_core);

  GoBackN tx(sim::SimTime::milliseconds(100), true);
  tx.attach(tx_core);
  tx.wire(&tx_ack, &tx_seq);
  SelectiveRepeat rx(sim::SimTime::milliseconds(100), true);
  rx.attach(rx_core);
  rx.wire(&rx_ack, &rx_seq);

  // Five PDUs in flight; only the first two reach the receiver pre-segue.
  for (std::uint8_t i = 1; i <= 5; ++i) tx.send_data(msg(i));
  for (std::size_t i = 0; i < 2; ++i) {
    Pdu copy = tx_core.emitted[i];
    copy.payload = tx_core.emitted[i].payload.clone();
    rx.on_data(std::move(copy), 1);
  }
  (void)tx.on_ack(ack_pdu(2), 1);
  ASSERT_EQ(tx.in_flight(), 3u);

  // Mid-transfer reconfiguration on both ends (the paper's segue): the
  // new sender instance must still hold 3,4,5; the new receiver instance
  // must remember it has seen 1,2.
  SelectiveRepeat tx2(sim::SimTime::milliseconds(100), true);
  tx2.attach(tx_core);
  tx2.segue_from(tx);
  tx2.wire(&tx_ack, &tx_seq);
  GoBackN rx2(sim::SimTime::milliseconds(100), true);
  rx2.attach(rx_core);
  rx2.segue_from(rx);
  rx2.wire(&rx_ack, &rx_seq);
  EXPECT_EQ(tx2.in_flight(), 3u);

  // Deliver everything sent so far (including a duplicate of 2) post-segue.
  const std::size_t already = tx_core.emitted.size();
  for (std::size_t i = 1; i < already; ++i) {
    Pdu copy = tx_core.emitted[i];
    copy.payload = tx_core.emitted[i].payload.clone();
    rx2.on_data(std::move(copy), 1);
  }
  EXPECT_EQ(rx_core.delivered.size(), 5u);  // zero loss ...
  std::map<std::uint8_t, int> seen;
  for (const auto& d : rx_core.delivered) seen[d.at(0)]++;
  for (const auto& [tag, n] : seen) EXPECT_EQ(n, 1) << "payload " << int(tag) << " duplicated";
  EXPECT_EQ(rx2.stats().duplicates_received, 1u);  // ... and the dup was filtered

  (void)tx2.on_ack(ack_pdu(5), 1);
  EXPECT_TRUE(tx2.all_acked());
}

}  // namespace
}  // namespace adaptive::tko::sa

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// Fault-plan DSL
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKindWithOptions) {
  std::vector<std::string> errors;
  const auto plan = sim::parse_fault_plan(
      "down@2+0.8:link=1;"
      "flap@2+0.2:link=0,count=3,period=1.5;"
      "burst@1.5+4:link=0,ber=1e-4,g2b=0.07,b2g=0.4;"
      "delay@3+2:link=0,add=0.25;"
      "bw@3+2:link=0,factor=0.1;"
      "partition@5+1:node=2",
      &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(plan.faults.size(), 6u);

  EXPECT_EQ(plan.faults[0].kind, sim::FaultKind::kLinkDown);
  EXPECT_EQ(plan.faults[0].at, sim::SimTime::seconds(2));
  EXPECT_EQ(plan.faults[0].duration, sim::SimTime::milliseconds(800));
  EXPECT_EQ(plan.faults[0].link, 1u);

  EXPECT_EQ(plan.faults[1].kind, sim::FaultKind::kLinkFlap);
  EXPECT_EQ(plan.faults[1].count, 3u);
  EXPECT_EQ(plan.faults[1].period, sim::SimTime::milliseconds(1500));

  EXPECT_EQ(plan.faults[2].kind, sim::FaultKind::kBurstLoss);
  EXPECT_DOUBLE_EQ(plan.faults[2].burst_error_rate, 1e-4);
  EXPECT_DOUBLE_EQ(plan.faults[2].p_good_to_bad, 0.07);
  EXPECT_DOUBLE_EQ(plan.faults[2].p_bad_to_good, 0.4);

  EXPECT_EQ(plan.faults[3].kind, sim::FaultKind::kLatencySpike);
  EXPECT_EQ(plan.faults[3].extra_delay, sim::SimTime::milliseconds(250));

  EXPECT_EQ(plan.faults[4].kind, sim::FaultKind::kBandwidthDrop);
  EXPECT_DOUBLE_EQ(plan.faults[4].bandwidth_factor, 0.1);

  EXPECT_EQ(plan.faults[5].kind, sim::FaultKind::kPartition);
  EXPECT_EQ(plan.faults[5].node, 2u);

  EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultPlan, MalformedSpecsReportButDoNotPoisonTheRest) {
  std::vector<std::string> errors;
  const auto plan = sim::parse_fault_plan(
      "wobble@1;down@x+1:link=0;down@2:link=abc;down@3+1:link=0", &errors);
  ASSERT_EQ(plan.faults.size(), 1u);  // only the last spec is well formed
  EXPECT_EQ(plan.faults[0].at, sim::SimTime::seconds(3));
  EXPECT_EQ(errors.size(), 3u);
}

TEST(FaultPlan, EmptyTextIsAnEmptyPlan) {
  EXPECT_TRUE(sim::parse_fault_plan("").empty());
  EXPECT_TRUE(sim::parse_fault_plan("  ;  ").empty());
}

// ---------------------------------------------------------------------------
// Fault injector against a live topology
// ---------------------------------------------------------------------------

TEST(FaultInjector, DownEpisodeTogglesBothDirectionsAndRestores) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan("down@1+0.5:link=0"));

  world.run_for(sim::SimTime::milliseconds(1100));
  EXPECT_FALSE(world.network().link(fwd).is_up());
  EXPECT_FALSE(world.network().link(fwd ^ 1u).is_up());

  world.run_for(sim::SimTime::milliseconds(500));
  EXPECT_TRUE(world.network().link(fwd).is_up());
  EXPECT_TRUE(world.network().link(fwd ^ 1u).is_up());
  EXPECT_EQ(injector.stats().episodes_started, 1u);
  EXPECT_EQ(injector.stats().episodes_ended, 1u);
  EXPECT_EQ(world.network().monitor().faults(), 2u);  // begin + end events
}

TEST(FaultInjector, BurstEpisodeRestoresTheSavedLinkConfig) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  const net::LinkId fwd = world.topology().scenario_links.at(0);
  const auto before = world.network().link(fwd).config();

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan("burst@0.5+1:link=0,ber=1e-3"));

  world.run_for(sim::SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(world.network().link(fwd).config().burst_error_rate, 1e-3);
  EXPECT_GT(world.network().link(fwd).config().p_good_to_bad, 0.0);

  world.run_for(sim::SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(world.network().link(fwd).config().burst_error_rate,
                   before.burst_error_rate);
  EXPECT_DOUBLE_EQ(world.network().link(fwd).config().p_good_to_bad, before.p_good_to_bad);
}

TEST(FaultInjector, UnresolvableTargetsAreCountedNotFatal) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan("down@0.1+0.1:link=99"));
  world.run_for(sim::SimTime::seconds(1));
  EXPECT_GE(injector.stats().unresolved_targets, 1u);
  EXPECT_EQ(injector.stats().episodes_started, 0u);
}

// ---------------------------------------------------------------------------
// NMI degraded bit
// ---------------------------------------------------------------------------

TEST(NmiDegraded, LinkDownMarksPathDegraded) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  mantts::NetworkMonitorInterface nmi(world.network(), world.node(0));

  auto d = nmi.sample(world.node(1));
  EXPECT_TRUE(d.reachable);
  EXPECT_FALSE(d.degraded);

  world.network().set_link_pair_up(world.topology().scenario_links.at(0), false);
  d = nmi.sample(world.node(1));
  EXPECT_FALSE(d.reachable);
  EXPECT_TRUE(d.degraded);

  world.network().set_link_pair_up(world.topology().scenario_links.at(0), true);
  d = nmi.sample(world.node(1));
  EXPECT_TRUE(d.reachable);
  EXPECT_FALSE(d.degraded);
}

TEST(NmiDegraded, BurstCorruptionCrossesTheWorstCaseBerLine) {
  // Bit corruption never shows up in recent_loss_rate (corrupted packets
  // deliver at the net layer and die at the session checksum), so the
  // degraded bit must key off the worst-case BER instead.
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 7); });
  mantts::NetworkMonitorInterface nmi(world.network(), world.node(0));

  const net::LinkId fwd = world.topology().scenario_links.at(0);
  for (net::LinkId id : {fwd, static_cast<net::LinkId>(fwd ^ 1u)}) {
    net::LinkConfig cfg = world.network().link(id).config();
    cfg.p_good_to_bad = 0.05;
    cfg.p_bad_to_good = 0.3;
    cfg.burst_error_rate = 1e-4;  // >= kDegradedBer while in the bad state
    world.network().link(id).set_config(cfg);
  }
  const auto d = nmi.sample(world.node(1));
  EXPECT_TRUE(d.reachable);
  EXPECT_GE(d.bit_error_rate, mantts::kDegradedBer);
  EXPECT_TRUE(d.degraded);
}

// ---------------------------------------------------------------------------
// QoS downgrade ladder
// ---------------------------------------------------------------------------

TEST(QosDowngrade, EveryRungProducesAValidStricterConfig) {
  tko::sa::SessionConfig cfg;  // defaults: sliding window + selective repeat
  for (int rung = 0; rung < mantts::kQosDowngradeRungs; ++rung) {
    auto down = mantts::downgrade_qos(cfg, rung);
    ASSERT_TRUE(down.has_value()) << "rung " << rung;
    EXPECT_NE(*down, cfg) << "rung " << rung << " must change the config";
    EXPECT_TRUE(tko::sa::Synthesizer::validate(*down).empty())
        << "rung " << rung << " produced an invalid config";
    cfg = *down;
  }
  EXPECT_FALSE(mantts::downgrade_qos(cfg, mantts::kQosDowngradeRungs).has_value());
}

TEST(QosDowngrade, LadderNeverAddsRecoveryToALightweightConfig) {
  tko::sa::SessionConfig cfg;
  cfg.recovery = tko::sa::RecoveryScheme::kNone;  // loss-tolerant isochronous
  for (int rung = 0; rung < mantts::kQosDowngradeRungs; ++rung) {
    auto down = mantts::downgrade_qos(cfg, rung);
    ASSERT_TRUE(down.has_value());
    EXPECT_EQ(down->recovery, tko::sa::RecoveryScheme::kNone);
    cfg = *down;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: scripted faults provoke recovery with zero data loss
// ---------------------------------------------------------------------------

TEST(FaultScenario, FlapAndBurstProvokeRecoveryWithZeroDataLoss) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 11); });

  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::fault_recovery_rules();
  opt.faults = sim::parse_fault_plan("flap@2+0.3:link=0,count=3,period=1;burst@1+4:link=0,ber=1e-4");
  opt.scale = 0.35;  // fits the impaired 1.5 Mbps backbone within drain
  opt.duration = sim::SimTime::seconds(8);
  opt.drain = sim::SimTime::seconds(12);
  opt.seed = 11;
  opt.collect_metrics = true;

  const auto out = run_scenario(world, opt);

  // The injector ran the whole plan: 3 flap episodes + 1 burst episode.
  EXPECT_EQ(out.fault.episodes_started, 4u);
  EXPECT_EQ(out.fault.episodes_ended, 4u);

  // The faults were felt and answered: at least one acked RECONFIG
  // renegotiation and at least one mechanism segue.
  EXPECT_GE(out.mantts.renegotiations, 1u);
  EXPECT_GE(out.reconfigurations, 1u);
  EXPECT_GE(out.mantts.faults_detected, 1u);

  // ... and recovery closed out: the NMI saw the path healthy again.
  EXPECT_GE(out.mantts.recoveries, 1u);
  const auto rec = world.repository().systemwide_histogram(unites::metrics::kRecoveryTimeNs);
  EXPECT_EQ(rec.count(), out.mantts.recoveries);
  EXPECT_GT(rec.p50(), 0.0);

  // Zero application-visible loss or duplication across every segue.
  EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
  EXPECT_EQ(out.sink.duplicates, 0u);
  EXPECT_EQ(out.qos.loss_fraction, 0.0);
  EXPECT_TRUE(out.qos.order_ok);
}

}  // namespace
}  // namespace adaptive
