// Robustness fuzzing: hostile and mutated inputs must never crash, hang,
// or smuggle corrupted state into the system — only be rejected.
//
//  * PDU decoder vs random bytes and vs bit/byte mutations of valid PDUs.
//  * SessionConfig deserializer vs random bytes (and the invariant that
//    whatever it accepts re-serializes to the same thing).
//  * MANTTS signaling decoder vs mutated CONFIG PDUs.
//  * Transport demux vs garbage packets on the transport and signaling
//    ports of a live world.
#include "adaptive/world.hpp"
#include "mantts/negotiation.hpp"
#include "tko/pdu.hpp"
#include "tko/sa/config.hpp"

#include <gtest/gtest.h>

namespace adaptive {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform_int(0, max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, PduDecoderNeverAcceptsGarbage) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    auto junk = random_bytes(rng, 128);
    const auto r = tko::decode_pdu(tko::Message::from_bytes(junk));
    // Random bytes essentially never carry a valid version + length +
    // checksum; anything else is a rejection, which must be graceful.
    if (r.status == tko::DecodeStatus::kOk) {
      // Astronomically unlikely; if it happens the PDU must at least be
      // internally consistent.
      EXPECT_LE(r.pdu.payload.size(), junk.size());
    }
  }
}

TEST_P(FuzzSeeds, MutatedValidPdusAreDetectedOrEquivalent) {
  sim::Rng rng(GetParam());
  tko::Pdu p;
  p.type = tko::PduType::kData;
  p.session_id = 77;
  p.seq = 9;
  std::vector<std::uint8_t> payload(200);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  p.payload = tko::Message::from_bytes(payload);
  const auto wire = tko::encode_pdu(std::move(p), tko::ChecksumKind::kCrc32,
                                    tko::ChecksumPlacement::kTrailer)
                        .linearize();

  int accepted_mutations = 0;
  for (int i = 0; i < 2000; ++i) {
    auto mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto bit = rng.uniform_int(0, mutated.size() * 8 - 1);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto r = tko::decode_pdu(tko::Message::from_bytes(mutated));
    if (r.status == tko::DecodeStatus::kOk) {
      // CRC32 catches all 1..4-bit flips within its coverage; an accepted
      // "mutation" can only be two flips cancelling on the same bit,
      // restoring the original image exactly.
      EXPECT_EQ(mutated, wire);
      ++accepted_mutations;
    }
  }
  (void)accepted_mutations;
}

TEST_P(FuzzSeeds, SessionConfigDeserializeIsTotalAndIdempotent) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    auto junk = random_bytes(rng, 64);
    const auto cfg = tko::sa::SessionConfig::deserialize(junk);
    if (!cfg.has_value()) continue;
    // Whatever is accepted must survive a serialize/deserialize cycle
    // exactly (the negotiation channel depends on this).
    const auto again = tko::sa::SessionConfig::deserialize(cfg->serialize());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *cfg);
  }
}

TEST_P(FuzzSeeds, SignalDecoderRejectsMutations) {
  sim::Rng rng(GetParam());
  mantts::Signal sig;
  sig.type = tko::PduType::kConfig;
  sig.token = 5;
  sig.config = tko::sa::SessionConfig{};
  const auto wire = mantts::encode_signal(sig);
  for (int i = 0; i < 1000; ++i) {
    auto mutated = wire;
    const auto bit = rng.uniform_int(0, mutated.size() * 8 - 1);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto out = mantts::decode_signal(mutated);
    if (out.has_value()) {
      EXPECT_EQ(mutated, wire);  // only a no-op "mutation" may pass
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

TEST(FuzzLive, GarbagePacketsDontDisturbALiveTransfer) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 3, 201); });
  std::size_t received = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { received += m.size(); });
  });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(100'000, 7),
                                        &world.host(0).buffers()));

  // Host 2 sprays garbage at host 1's transport and signaling ports
  // throughout the transfer.
  sim::Rng rng(202);
  for (int i = 0; i < 300; ++i) {
    world.scheduler().schedule_after(sim::SimTime::microseconds(100 * i), [&, i] {
      net::Packet junk;
      junk.src = {world.node(2), 1234};
      junk.dst = {world.node(1),
                  (i % 2) == 0 ? tko::kTransportPort : mantts::kSignalingPort};
      junk.payload.resize(rng.uniform_int(1, 200));
      for (auto& b : junk.payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      world.host(2).send(std::move(junk));
    });
  }
  world.run_for(sim::SimTime::seconds(5));
  EXPECT_EQ(received, 100'000u);  // transfer unharmed
  EXPECT_GT(world.transport(1).orphan_pdus(), 0u);  // garbage was counted & dropped
}

TEST(FuzzLive, TruncatedAndOversizedFramesRejected) {
  // Directly exercise decode paths with boundary sizes.
  for (std::size_t n = 0; n <= tko::kPduHeaderBytes + 4; ++n) {
    std::vector<std::uint8_t> frame(n, 0);
    if (n > 0) frame[0] = 1;  // valid version byte
    const auto r = tko::decode_pdu(tko::Message::from_bytes(frame));
    EXPECT_NE(r.status, tko::DecodeStatus::kOk) << "n=" << n;
  }
  // Declared payload length beyond the actual bytes.
  tko::Pdu p;
  p.type = tko::PduType::kData;
  p.payload = tko::Message::from_bytes(std::vector<std::uint8_t>(64, 1));
  auto wire = tko::encode_pdu(std::move(p), tko::ChecksumKind::kNone,
                              tko::ChecksumPlacement::kTrailer)
                  .linearize();
  wire[18] = 0xFF;  // payload_len high byte
  EXPECT_EQ(tko::decode_pdu(tko::Message::from_bytes(wire)).status,
            tko::DecodeStatus::kMalformed);
}

}  // namespace
}  // namespace adaptive
