// Robustness fuzzing: hostile and mutated inputs must never crash, hang,
// or smuggle corrupted state into the system — only be rejected.
//
//  * PDU decoder vs random bytes and vs bit/byte mutations of valid PDUs.
//  * SessionConfig deserializer vs random bytes (and the invariant that
//    whatever it accepts re-serializes to the same thing).
//  * MANTTS signaling decoder vs mutated CONFIG PDUs.
//  * Transport demux vs garbage packets on the transport and signaling
//    ports of a live world.
//  * Fault-plan parser vs the checked-in regression corpus in
//    tests/corpus/fault_plans/ — inputs that previously crashed or
//    mis-parsed stay pinned to their expected accept/reject counts.
#include "adaptive/world.hpp"
#include "mantts/negotiation.hpp"
#include "sim/fault_plan.hpp"
#include "tko/pdu.hpp"
#include "tko/sa/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace adaptive {
namespace {

std::vector<std::uint8_t> random_bytes(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform_int(0, max_len));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, PduDecoderNeverAcceptsGarbage) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    auto junk = random_bytes(rng, 128);
    const auto r = tko::decode_pdu(tko::Message::from_bytes(junk));
    // Random bytes essentially never carry a valid version + length +
    // checksum; anything else is a rejection, which must be graceful.
    if (r.status == tko::DecodeStatus::kOk) {
      // Astronomically unlikely; if it happens the PDU must at least be
      // internally consistent.
      EXPECT_LE(r.pdu.payload.size(), junk.size());
    }
  }
}

TEST_P(FuzzSeeds, MutatedValidPdusAreDetectedOrEquivalent) {
  sim::Rng rng(GetParam());
  tko::Pdu p;
  p.type = tko::PduType::kData;
  p.session_id = 77;
  p.seq = 9;
  std::vector<std::uint8_t> payload(200);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  p.payload = tko::Message::from_bytes(payload);
  const auto wire = tko::encode_pdu(std::move(p), tko::ChecksumKind::kCrc32,
                                    tko::ChecksumPlacement::kTrailer)
                        .linearize();

  int accepted_mutations = 0;
  for (int i = 0; i < 2000; ++i) {
    auto mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto bit = rng.uniform_int(0, mutated.size() * 8 - 1);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const auto r = tko::decode_pdu(tko::Message::from_bytes(mutated));
    if (r.status == tko::DecodeStatus::kOk) {
      // CRC32 catches all 1..4-bit flips within its coverage; an accepted
      // "mutation" can only be two flips cancelling on the same bit,
      // restoring the original image exactly.
      EXPECT_EQ(mutated, wire);
      ++accepted_mutations;
    }
  }
  (void)accepted_mutations;
}

TEST_P(FuzzSeeds, SessionConfigDeserializeIsTotalAndIdempotent) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    auto junk = random_bytes(rng, 64);
    const auto cfg = tko::sa::SessionConfig::deserialize(junk);
    if (!cfg.has_value()) continue;
    // Whatever is accepted must survive a serialize/deserialize cycle
    // exactly (the negotiation channel depends on this).
    const auto again = tko::sa::SessionConfig::deserialize(cfg->serialize());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *cfg);
  }
}

TEST_P(FuzzSeeds, SignalDecoderRejectsMutations) {
  sim::Rng rng(GetParam());
  mantts::Signal sig;
  sig.type = tko::PduType::kConfig;
  sig.token = 5;
  sig.config = tko::sa::SessionConfig{};
  auto signal_wire = mantts::encode_signal(sig);
  const auto wire = signal_wire.linearize();
  for (int i = 0; i < 1000; ++i) {
    auto mutated = wire;
    const auto bit = rng.uniform_int(0, mutated.size() * 8 - 1);
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto out = mantts::decode_signal(tko::Message::from_bytes(mutated));
    if (out.has_value()) {
      EXPECT_EQ(mutated, wire);  // only a no-op "mutation" may pass
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

TEST(FuzzLive, GarbagePacketsDontDisturbALiveTransfer) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 3, 201); });
  std::size_t received = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { received += m.size(); });
  });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(100'000, 7),
                                        &world.host(0).buffers()));

  // Host 2 sprays garbage at host 1's transport and signaling ports
  // throughout the transfer.
  sim::Rng rng(202);
  for (int i = 0; i < 300; ++i) {
    world.scheduler().schedule_after(sim::SimTime::microseconds(100 * i), [&, i] {
      net::Packet junk;
      junk.src = {world.node(2), 1234};
      junk.dst = {world.node(1),
                  (i % 2) == 0 ? tko::kTransportPort : mantts::kSignalingPort};
      std::vector<std::uint8_t> noise(rng.uniform_int(1, 200));
      for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      junk.payload = tko::Message::from_bytes(noise);
      world.host(2).send(std::move(junk));
    });
  }
  world.run_for(sim::SimTime::seconds(5));
  EXPECT_EQ(received, 100'000u);  // transfer unharmed
  EXPECT_GT(world.transport(1).orphan_pdus(), 0u);  // garbage was counted & dropped
}

TEST(FuzzLive, TruncatedAndOversizedFramesRejected) {
  // Directly exercise decode paths with boundary sizes.
  for (std::size_t n = 0; n <= tko::kPduHeaderBytes + 4; ++n) {
    std::vector<std::uint8_t> frame(n, 0);
    if (n > 0) frame[0] = 1;  // valid version byte
    const auto r = tko::decode_pdu(tko::Message::from_bytes(frame));
    EXPECT_NE(r.status, tko::DecodeStatus::kOk) << "n=" << n;
  }
  // Declared payload length beyond the actual bytes.
  tko::Pdu p;
  p.type = tko::PduType::kData;
  p.payload = tko::Message::from_bytes(std::vector<std::uint8_t>(64, 1));
  auto wire = tko::encode_pdu(std::move(p), tko::ChecksumKind::kNone,
                              tko::ChecksumPlacement::kTrailer)
                  .linearize();
  wire[18] = 0xFF;  // payload_len high byte
  EXPECT_EQ(tko::decode_pdu(tko::Message::from_bytes(wire)).status,
            tko::DecodeStatus::kMalformed);
}

// --- Fault-plan regression corpus -----------------------------------------
//
// Each tests/corpus/fault_plans/*.txt file holds one hostile or tricky
// plan: `#` lines are commentary, one `# expect: faults=N errors=M` line
// pins the parser's verdict, and the remaining lines are joined with ';'
// into a single plan string. Past parser bugs (the 1e308 time overflow,
// NaN slipping through range checks) live here so they stay fixed.

struct CorpusCase {
  std::string name;
  std::string plan;
  std::size_t expect_faults = 0;
  std::size_t expect_errors = 0;
};

std::vector<CorpusCase> load_fault_plan_corpus() {
  const std::filesystem::path dir =
      std::filesystem::path(ADAPTIVE_TEST_CORPUS_DIR) / "fault_plans";
  std::vector<CorpusCase> cases;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    CorpusCase c;
    c.name = entry.path().stem().string();
    std::ifstream in(entry.path());
    bool saw_expect = false;
    std::string line;
    std::string joined;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '#') {
        const auto pos = line.find("expect:");
        if (pos != std::string::npos) {
          std::size_t faults = 0;
          std::size_t errors = 0;
          if (std::sscanf(line.c_str() + pos, "expect: faults=%zu errors=%zu",
                          &faults, &errors) == 2) {
            c.expect_faults = faults;
            c.expect_errors = errors;
            saw_expect = true;
          }
        }
        continue;
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (!joined.empty()) joined += ';';
      joined += line;
    }
    EXPECT_TRUE(saw_expect) << c.name << ": missing '# expect: faults=N errors=M'";
    c.plan = std::move(joined);
    cases.push_back(std::move(c));
  }
  EXPECT_FALSE(cases.empty()) << "no corpus files under " << dir;
  return cases;
}

TEST(FaultPlanCorpus, EveryCheckedInPlanParsesToItsPinnedVerdict) {
  for (const auto& c : load_fault_plan_corpus()) {
    SCOPED_TRACE(c.name);
    std::vector<std::string> errors;
    const auto plan = sim::parse_fault_plan(c.plan, &errors);
    EXPECT_EQ(plan.faults.size(), c.expect_faults)
        << "plan: " << c.plan
        << (errors.empty() ? "" : "\nfirst error: " + errors.front());
    EXPECT_EQ(errors.size(), c.expect_errors) << "plan: " << c.plan;
    // Whatever was accepted must carry sane, finite, non-negative times —
    // the 1e308 overflow bug produced a "valid" fault at t = INT64_MIN.
    for (const auto& f : plan.faults) {
      EXPECT_GE(f.at, sim::SimTime::zero()) << f.describe();
      EXPECT_GE(f.duration, sim::SimTime::zero()) << f.describe();
      EXPECT_GE(f.period, sim::SimTime::zero()) << f.describe();
    }
    // describe() on the parsed plan must itself be total.
    (void)plan.describe();
  }
}

TEST(FaultPlanCorpus, ParserIsDeterministicAcrossRepeatedRuns) {
  for (const auto& c : load_fault_plan_corpus()) {
    SCOPED_TRACE(c.name);
    std::vector<std::string> e1;
    std::vector<std::string> e2;
    const auto p1 = sim::parse_fault_plan(c.plan, &e1);
    const auto p2 = sim::parse_fault_plan(c.plan, &e2);
    EXPECT_EQ(p1.describe(), p2.describe());
    EXPECT_EQ(e1, e2);
  }
}

}  // namespace
}  // namespace adaptive
