// System-level integration tests through the scenario runner: the full
// MANTTS -> TKO -> UNITES pipeline over realistic topologies, including
// the paper's headline behaviours (lightweight beats overweight for
// voice; adaptation survives congestion onset and route failover).
#include "adaptive/scenario.hpp"
#include "net/background_traffic.hpp"

#include <gtest/gtest.h>

namespace adaptive {
namespace {

using app::Table1App;
using Mode = RunOptions::Mode;

TEST(Scenario, VoiceOverLanMeetsQosUnderManntts) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 21); });
  RunOptions opt;
  opt.application = Table1App::kVoice;
  opt.duration = sim::SimTime::seconds(5);
  const auto out = run_scenario(world, opt);
  EXPECT_EQ(out.tsc, mantts::Tsc::kInteractiveIsochronous);
  EXPECT_EQ(out.config.recovery, tko::sa::RecoveryScheme::kNone);
  EXPECT_TRUE(out.qos.all_ok()) << out.qos.verdict();
  EXPECT_LT(out.qos.mean_latency_ns, 10'000'000);  // < 10 ms
  EXPECT_GT(out.sink.units_received, 200u);
}

TEST(Scenario, FileTransferCompletesLosslessly) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 22); });
  RunOptions opt;
  opt.application = Table1App::kFileTransfer;
  opt.duration = sim::SimTime::seconds(20);
  opt.drain = sim::SimTime::seconds(5);
  const auto out = run_scenario(world, opt);
  EXPECT_EQ(out.tsc, mantts::Tsc::kNonRealTimeNonIsochronous);
  EXPECT_TRUE(out.qos.loss_ok) << out.qos.verdict();
  EXPECT_TRUE(out.qos.order_ok);
  EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
}

TEST(Scenario, Tp4IsOverweightForVoice) {
  // The paper's overweight example: retransmission support for a
  // loss-tolerant constrained-latency application only slows it down.
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 23); });
  net::BackgroundTrafficConfig bg;
  bg.src = {world.node(2), 9};
  bg.dst = {world.node(3), 9};
  bg.burst_rate = sim::Rate::mbps(1.6);  // overload the 1.5 Mbps backbone
  bg.always_on = true;
  net::BackgroundTraffic cross(world.network(), bg, 5);
  cross.start();

  RunOptions adaptive_opt;
  adaptive_opt.application = Table1App::kVoice;
  adaptive_opt.duration = sim::SimTime::seconds(5);
  const auto adaptive_out = run_scenario(world, adaptive_opt);

  RunOptions tp4_opt = adaptive_opt;
  tp4_opt.mode = Mode::kStaticTp4;
  const auto tp4_out = run_scenario(world, tp4_opt);
  cross.stop();

  // The heavyweight config retransmits into an overloaded queue: every
  // drop stalls ordered delivery an RTO and resends a whole window, so
  // delay inflates well beyond the lightweight configuration's, which
  // simply accepts the loss its application tolerates.
  EXPECT_GT(static_cast<double>(tp4_out.qos.mean_latency_ns),
            1.5 * static_cast<double>(adaptive_out.qos.mean_latency_ns));
  EXPECT_GT(tp4_out.reliability.retransmissions, 0u);
  EXPECT_EQ(adaptive_out.reliability.retransmissions, 0u);
}

TEST(Scenario, MulticastTeleconferenceReachesAllMembers) {
  World world([](sim::EventScheduler& s) { return net::make_multicast_campus(s, 8, 24); });
  RunOptions opt;
  opt.application = Table1App::kTeleconference;
  opt.multicast_members = {1, 2, 3};
  opt.duration = sim::SimTime::seconds(3);
  const auto out = run_scenario(world, opt);
  EXPECT_EQ(out.receivers, 3u);
  // Every member hears ~every frame (3 receivers x 300 frames).
  EXPECT_GT(out.sink.units_received, 850u);
  EXPECT_TRUE(out.qos.loss_ok) << out.qos.verdict();
}

TEST(Scenario, StaticSystemSendsNCopiesForMulticast) {
  World world([](sim::EventScheduler& s) { return net::make_multicast_campus(s, 8, 25); });
  RunOptions opt;
  opt.application = Table1App::kTeleconference;
  opt.multicast_members = {1, 2, 3};
  opt.duration = sim::SimTime::seconds(2);

  const auto tx_before_adaptive = world.host(0).nic().tx_packets();
  const auto adaptive_out = run_scenario(world, opt);
  const auto adaptive_tx = world.host(0).nic().tx_packets() - tx_before_adaptive;

  RunOptions static_opt = opt;
  static_opt.mode = Mode::kStaticDatagram;
  const auto tx_before_static = world.host(0).nic().tx_packets();
  const auto static_out = run_scenario(world, static_opt);
  const auto static_tx = world.host(0).nic().tx_packets() - tx_before_static;

  // Both deliver to every member, but the static system pushed ~3x the
  // packets through the sender NIC (underweight: no multicast service).
  EXPECT_GT(static_out.sink.units_received, 500u);
  EXPECT_NEAR(static_cast<double>(static_out.sink.units_received),
              static_cast<double>(adaptive_out.sink.units_received), 10.0);
  EXPECT_GT(static_tx, 2 * adaptive_tx);
}

TEST(Scenario, AdaptiveModeSwitchesRecoveryUnderCongestionOnset) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 26); });

  RunOptions opt;
  opt.application = Table1App::kFileTransfer;
  opt.mode = Mode::kMantttsAdaptive;
  opt.duration = sim::SimTime::seconds(25);
  opt.drain = sim::SimTime::seconds(8);
  opt.scale = 0.25;  // 500 KB so it can finish on a T1

  // Congestion arrives mid-transfer.
  net::BackgroundTrafficConfig bg;
  bg.src = {world.node(2), 9};
  bg.dst = {world.node(3), 9};
  bg.burst_rate = sim::Rate::mbps(3);
  bg.always_on = true;
  net::BackgroundTraffic cross(world.network(), bg, 6);
  world.scheduler().schedule_after(sim::SimTime::seconds(5), [&] { cross.start(); });

  const auto out = run_scenario(world, opt);
  EXPECT_GT(out.reconfigurations, 0u);  // policies fired
  EXPECT_GT(world.mantts(0).stats().policy_firings, 0u);
  EXPECT_TRUE(out.qos.order_ok);
  cross.stop();
}

TEST(Scenario, RouteFailoverToSatelliteTriggersFecSwitch) {
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 27); });
  RunOptions opt;
  opt.application = Table1App::kManufacturingControl;
  opt.mode = Mode::kMantttsAdaptive;
  opt.duration = sim::SimTime::seconds(12);
  opt.scale = 0.5;

  // Terrestrial path dies at t=4s; traffic reroutes over the satellite.
  world.scheduler().schedule_after(sim::SimTime::seconds(4), [&] {
    world.network().set_link_pair_up(world.topology().scenario_links[0], false);
  });

  const auto out = run_scenario(world, opt);
  EXPECT_GT(out.reconfigurations, 0u);
  // The RTT-above rule must have moved the session onto FEC.
  EXPECT_EQ(out.config.recovery, tko::sa::RecoveryScheme::kForwardErrorCorrection);
}

TEST(Scenario, MetricsFlowIntoWorldRepository) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 28); });
  RunOptions opt;
  opt.application = Table1App::kOltp;
  opt.duration = sim::SimTime::seconds(3);
  opt.collect_metrics = true;
  (void)run_scenario(world, opt);
  EXPECT_GT(world.repository().total_samples(), 0u);
  EXPECT_GT(world.repository().systemwide_sum(unites::metrics::kPdusSent), 0.0);
}

TEST(Scenario, AllNineTable1AppsPassOnCleanLans) {
  // The Table 1 reproduction in miniature: every application class meets
  // its ACD when MANTTS configures the session on an adequate network.
  World world([](sim::EventScheduler& s) { return net::make_fddi_ring(s, 4, 29); });
  for (std::size_t i = 0; i < app::kTable1AppCount; ++i) {
    RunOptions opt;
    opt.application = static_cast<Table1App>(i);
    opt.duration = sim::SimTime::seconds(3);
    opt.drain = sim::SimTime::seconds(4);
    opt.seed = 100 + i;
    const auto out = run_scenario(world, opt);
    EXPECT_TRUE(out.qos.all_ok())
        << app::to_string(opt.application) << " " << out.qos.verdict();
    EXPECT_GT(out.sink.units_received, 0u) << app::to_string(opt.application);
  }
}

}  // namespace
}  // namespace adaptive
