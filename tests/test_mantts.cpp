// Tests for MANTTS: Table 1 data, Stage I/II transformations, the NMI,
// TSA policy engine, negotiation codec/admission, and the entity's full
// open/adapt/close life cycle over a simulated network.
#include "adaptive/world.hpp"
#include "mantts/mantts.hpp"
#include "mantts/negotiation.hpp"
#include "mantts/policy.hpp"
#include "mantts/transform.hpp"
#include "mantts/tsc.hpp"
#include "net/background_traffic.hpp"
#include "net/topologies.hpp"

#include <gtest/gtest.h>

namespace adaptive::mantts {
namespace {

using tko::sa::AckScheme;
using tko::sa::ConnectionScheme;
using tko::sa::DetectionScheme;
using tko::sa::RecoveryScheme;
using tko::sa::SessionConfig;
using tko::sa::TransmissionScheme;

Acd voice_acd() {
  Acd acd;
  acd.remotes = {{1, tko::kTransportPort}};
  acd.quantitative.average_throughput = sim::Rate::kbps(64);
  acd.quantitative.max_latency = sim::SimTime::milliseconds(150);
  acd.quantitative.max_jitter = sim::SimTime::milliseconds(30);
  acd.quantitative.loss_tolerance = 0.1;
  acd.quantitative.duration = sim::SimTime::seconds(30);
  acd.qualitative.isochronous = true;
  acd.qualitative.conversational = true;
  acd.qualitative.sequenced_delivery = false;
  acd.qualitative.duplicate_sensitive = false;
  return acd;
}

Acd bulk_acd() {
  Acd acd;
  acd.remotes = {{1, tko::kTransportPort}};
  acd.quantitative.average_throughput = sim::Rate::mbps(5);
  acd.quantitative.loss_tolerance = 0.0;
  acd.quantitative.duration = sim::SimTime::seconds(120);
  acd.qualitative.sequenced_delivery = true;
  return acd;
}

NetworkStateDescriptor lan_state() {
  NetworkStateDescriptor d;
  d.reachable = true;
  d.rtt = sim::SimTime::milliseconds(2);
  d.bottleneck = sim::Rate::mbps(10);
  d.mtu = 1500;
  d.bit_error_rate = 1e-9;
  return d;
}

TEST(Table1, HasAllNineRows) {
  const auto& rows = table1();
  EXPECT_EQ(rows.size(), 9u);
  EXPECT_STREQ(rows[0].application, "Voice Conversation");
  EXPECT_EQ(rows[0].loss_tolerance, LossTolerance::kHigh);
  EXPECT_FALSE(rows[0].multicast);
  EXPECT_STREQ(rows[4].application, "Manufacturing Control");
  EXPECT_EQ(rows[4].tsc, Tsc::kRealTimeNonIsochronous);
  EXPECT_TRUE(rows[1].multicast);  // tele-conferencing
  EXPECT_EQ(rows[5].loss_tolerance, LossTolerance::kNone);  // file transfer
}

TEST(StageI, ClassifiesByQos) {
  EXPECT_EQ(classify(voice_acd()), Tsc::kInteractiveIsochronous);
  EXPECT_EQ(classify(bulk_acd()), Tsc::kNonRealTimeNonIsochronous);

  Acd video = voice_acd();
  video.qualitative.conversational = false;  // one-way distribution
  video.quantitative.average_throughput = sim::Rate::mbps(20);
  EXPECT_EQ(classify(video), Tsc::kDistributionalIsochronous);

  Acd control = bulk_acd();
  control.qualitative.realtime = true;
  EXPECT_EQ(classify(control), Tsc::kRealTimeNonIsochronous);
}

TEST(StageI, DefaultConfigsAreValid) {
  for (const Tsc t : {Tsc::kInteractiveIsochronous, Tsc::kDistributionalIsochronous,
                      Tsc::kRealTimeNonIsochronous, Tsc::kNonRealTimeNonIsochronous}) {
    EXPECT_TRUE(tko::sa::Synthesizer::validate(tsc_default_config(t)).empty())
        << to_string(t);
  }
}

TEST(StageII, VoiceGetsLightweightConfig) {
  const auto cfg = derive_scs(voice_acd(), lan_state());
  EXPECT_EQ(cfg.connection, ConnectionScheme::kImplicit);
  EXPECT_EQ(cfg.recovery, RecoveryScheme::kNone);  // loss-tolerant on a clean LAN
  EXPECT_EQ(cfg.transmission, TransmissionScheme::kRateControl);
  EXPECT_FALSE(cfg.ordered_delivery);
  EXPECT_TRUE(tko::sa::Synthesizer::validate(cfg).empty());
}

TEST(StageII, BulkGetsReliableWindowedConfig) {
  const auto cfg = derive_scs(bulk_acd(), lan_state());
  EXPECT_NE(cfg.recovery, RecoveryScheme::kNone);
  EXPECT_TRUE(cfg.ordered_delivery);
  EXPECT_GE(cfg.window_pdus, 4);
  EXPECT_TRUE(tko::sa::Synthesizer::validate(cfg).empty());
}

TEST(StageII, LongRttSwitchesDelayBoundedTrafficToFec) {
  auto state = lan_state();
  state.rtt = sim::SimTime::milliseconds(500);  // satellite-class
  Acd control = bulk_acd();
  control.qualitative.realtime = true;
  control.quantitative.max_latency = sim::SimTime::milliseconds(600);
  const auto cfg = derive_scs(control, state);
  EXPECT_EQ(cfg.recovery, RecoveryScheme::kForwardErrorCorrection);
}

TEST(StageII, CongestionPrefersSelectiveRepeatForUnicast) {
  auto state = lan_state();
  state.congestion = 0.8;
  const auto cfg = derive_scs(bulk_acd(), state);
  EXPECT_EQ(cfg.recovery, RecoveryScheme::kSelectiveRepeat);
  EXPECT_EQ(cfg.transmission, TransmissionScheme::kSlowStart);
}

TEST(StageII, MulticastPrefersGoBackN) {
  Acd acd = bulk_acd();
  acd.remotes = {{net::kMulticastBase, tko::kTransportPort}};
  const auto cfg = derive_scs(acd, lan_state());
  EXPECT_EQ(cfg.recovery, RecoveryScheme::kGoBackN);
}

TEST(StageII, HighBerPicksCrc) {
  auto state = lan_state();
  state.bit_error_rate = 1e-6;
  const auto cfg = derive_scs(bulk_acd(), state);
  EXPECT_EQ(cfg.detection, DetectionScheme::kCrc32Trailer);
}

TEST(StageII, WindowScalesWithBandwidthDelayProduct) {
  auto lan = lan_state();
  auto fat = lan_state();
  fat.rtt = sim::SimTime::milliseconds(100);
  fat.bottleneck = sim::Rate::mbps(155);
  const auto w_lan = derive_scs(bulk_acd(), lan).window_pdus;
  const auto w_fat = derive_scs(bulk_acd(), fat).window_pdus;
  EXPECT_GT(w_fat, w_lan);
  EXPECT_LE(w_fat, 256);
}

TEST(StageII, SegmentBoundedByMtu) {
  auto state = lan_state();
  state.mtu = 576;
  const auto cfg = derive_scs(bulk_acd(), state);
  EXPECT_LE(cfg.segment_bytes + tko::kPduHeaderBytes + tko::kChecksumTrailerBytes +
                SessionConfig::kWireBytes + net::Packet::kNetworkHeaderBytes,
            576u + net::Packet::kNetworkHeaderBytes);
}

TEST(Nmi, SamplesPathProperties) {
  sim::EventScheduler sched;
  auto topo = net::make_dual_path_wan(sched);
  NetworkMonitorInterface nmi(*topo.network, topo.hosts[0]);
  auto d = nmi.sample(topo.hosts[1]);
  EXPECT_TRUE(d.reachable);
  EXPECT_GT(d.rtt, sim::SimTime::milliseconds(20));
  EXPECT_LT(d.rtt, sim::SimTime::milliseconds(100));
  EXPECT_EQ(d.mtu, 4500u);
  const auto v0 = d.route_version;

  topo.network->set_link_pair_up(topo.scenario_links[0], false);
  d = nmi.sample(topo.hosts[1]);
  EXPECT_GT(d.rtt, sim::SimTime::milliseconds(400));  // satellite detour
  EXPECT_NE(d.route_version, v0);
}

TEST(Nmi, UnreachableReported) {
  sim::EventScheduler sched;
  net::Network net(sched, 1);
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net.recompute_routes();
  NetworkMonitorInterface nmi(net, a);
  EXPECT_FALSE(nmi.sample(b).reachable);
}

TEST(Policy, EdgeTriggeredWithCooldown) {
  PolicyEngine engine({{TsaCondition::kCongestionAbove, 0.5, TsaAction::kSwitchToSelectiveRepeat,
                        sim::SimTime::seconds(1)}});
  NetworkStateDescriptor hot;
  hot.congestion = 0.9;
  NetworkStateDescriptor cool;
  cool.congestion = 0.1;

  auto t = sim::SimTime::zero();
  // The first sample only establishes baselines — even if the condition
  // already holds (Stage II handled pre-existing conditions).
  EXPECT_EQ(engine.evaluate(hot, t).size(), 0u);
  (void)engine.evaluate(cool, t);
  EXPECT_EQ(engine.evaluate(hot, t).size(), 1u);   // rising edge fires
  EXPECT_EQ(engine.evaluate(hot, t).size(), 0u);   // level does not
  EXPECT_EQ(engine.evaluate(cool, t).size(), 0u);
  // Rising edge again but still inside cooldown: suppressed.
  t = sim::SimTime::milliseconds(500);
  EXPECT_EQ(engine.evaluate(hot, t).size(), 0u);
  (void)engine.evaluate(cool, t);
  t = sim::SimTime::seconds(3);
  EXPECT_EQ(engine.evaluate(hot, t).size(), 1u);
  EXPECT_EQ(engine.firings(), 2u);
}

TEST(Policy, RouteChangeCondition) {
  PolicyEngine engine(
      {{TsaCondition::kRouteChanged, 0.0, TsaAction::kSwitchToFec, sim::SimTime::zero()}});
  NetworkStateDescriptor d;
  d.route_version = 1;
  EXPECT_EQ(engine.evaluate(d, sim::SimTime::zero()).size(), 0u);  // baseline
  d.route_version = 2;
  EXPECT_EQ(engine.evaluate(d, sim::SimTime::milliseconds(1)).size(), 1u);
}

TEST(Policy, ApplyActionAdjustsConfig) {
  SessionConfig cfg = tko::sa::reliable_bulk_config();
  auto fec = apply_action(TsaAction::kSwitchToFec, cfg);
  EXPECT_EQ(fec.recovery, RecoveryScheme::kForwardErrorCorrection);
  auto gbn = apply_action(TsaAction::kSwitchToGoBackN, cfg);
  EXPECT_EQ(gbn.recovery, RecoveryScheme::kGoBackN);

  SessionConfig paced = cfg;
  paced.inter_pdu_gap = sim::SimTime::milliseconds(2);
  EXPECT_EQ(apply_action(TsaAction::kIncreaseInterPduGap, paced).inter_pdu_gap,
            sim::SimTime::milliseconds(4));
  EXPECT_EQ(apply_action(TsaAction::kDecreaseInterPduGap, paced).inter_pdu_gap,
            sim::SimTime::milliseconds(1));
  // Unpaced windowed config grows a pacing stage when asked to slow down.
  const auto now_paced = apply_action(TsaAction::kIncreaseInterPduGap, cfg);
  EXPECT_GT(now_paced.inter_pdu_gap, sim::SimTime::zero());
  EXPECT_EQ(now_paced.transmission, TransmissionScheme::kWindowAndRate);
}

TEST(Negotiation, SignalRoundTrip) {
  Signal s;
  s.type = tko::PduType::kConfig;
  s.token = 77;
  s.config = tko::sa::reliable_bulk_config();
  const auto wire = encode_signal(s);
  const auto back = decode_signal(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, tko::PduType::kConfig);
  EXPECT_EQ(back->token, 77u);
  ASSERT_TRUE(back->config.has_value());
  EXPECT_EQ(*back->config, tko::sa::reliable_bulk_config());
}

TEST(Negotiation, CorruptSignalRejected) {
  Signal s;
  s.type = tko::PduType::kConfig;
  s.config = tko::sa::reliable_bulk_config();
  auto wire = encode_signal(s);
  wire.mutable_bytes()[tko::kPduHeaderBytes + 3] ^= 0xFF;
  EXPECT_FALSE(decode_signal(wire).has_value());
}

TEST(Negotiation, AdmissionClampsResources) {
  ResourceLimits limits;
  limits.max_window_pdus = 8;
  limits.max_segment_bytes = 512;
  SessionConfig proposal = tko::sa::reliable_bulk_config();
  proposal.window_pdus = 64;
  proposal.segment_bytes = 4096;
  const auto admitted = admit(proposal, limits);
  EXPECT_EQ(admitted.window_pdus, 8);
  EXPECT_EQ(admitted.segment_bytes, 512u);
}

// ---------------------------------------------------------------------------
// Entity end-to-end
// ---------------------------------------------------------------------------

class EntityFixture : public ::testing::Test {
protected:
  EntityFixture()
      : world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, 9); }) {}

  Acd voice_acd_for(std::size_t dst) {
    Acd acd = voice_acd();
    acd.remotes = {world.transport_address(dst)};
    return acd;
  }
  Acd bulk_acd_for(std::size_t dst) {
    Acd acd = bulk_acd();
    acd.remotes = {world.transport_address(dst)};
    return acd;
  }

  World world;
};

TEST_F(EntityFixture, ImplicitOpenIsSynchronous) {
  MantttsEntity::OpenResult result;
  world.mantts(0).open_session(voice_acd_for(1), [&](auto r) { result = std::move(r); });
  ASSERT_NE(result.session, nullptr);
  EXPECT_EQ(result.tsc, Tsc::kInteractiveIsochronous);
  EXPECT_FALSE(result.negotiated);
  EXPECT_EQ(result.scs.connection, ConnectionScheme::kImplicit);
  EXPECT_EQ(world.mantts(0).active_sessions(), 1u);
}

TEST_F(EntityFixture, ExplicitOpenNegotiatesOutOfBand) {
  MantttsEntity::OpenResult result;
  bool done = false;
  world.mantts(0).open_session(bulk_acd_for(1), [&](auto r) {
    result = std::move(r);
    done = true;
  });
  EXPECT_FALSE(done);  // waiting for CONFIGACK
  world.run_for(sim::SimTime::seconds(1));
  ASSERT_TRUE(done);
  ASSERT_NE(result.session, nullptr);
  EXPECT_TRUE(result.negotiated);
  EXPECT_GT(result.configuration_time, sim::SimTime::zero());
  EXPECT_EQ(world.mantts(0).stats().negotiations, 1u);
  world.run_for(sim::SimTime::seconds(1));
  EXPECT_EQ(result.session->state(), tko::SessionState::kEstablished);
}

TEST_F(EntityFixture, ResponderClampsProposal) {
  // Rebuild with a constrained responder via per-entity limits: entity 1
  // is replaced in-place is not supported, so open toward a host whose
  // entity has small limits by constructing a dedicated world.
  mantts::ResourceLimits tight;
  tight.max_window_pdus = 4;
  World small([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 9); },
              os::CpuConfig{}, tight);
  MantttsEntity::OpenResult result;
  Acd acd = bulk_acd();
  acd.remotes = {small.transport_address(1)};
  small.mantts(0).open_session(acd, [&](auto r) { result = std::move(r); });
  small.run_for(sim::SimTime::seconds(1));
  ASSERT_NE(result.session, nullptr);
  EXPECT_LE(result.scs.window_pdus, 4);
}

TEST_F(EntityFixture, TransferCompletesUnderMantttsConfig) {
  MantttsEntity::OpenResult result;
  world.mantts(0).open_session(bulk_acd_for(1), [&](auto r) { result = std::move(r); });
  world.run_for(sim::SimTime::seconds(1));
  ASSERT_NE(result.session, nullptr);

  std::size_t delivered = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { delivered += m.size(); });
  });
  // Acceptor set after open: the passive session may already exist.
  if (auto* passive = world.transport(1).find_session(result.session->id())) {
    passive->set_deliver([&](tko::Message&& m) { delivered += m.size(); });
  }
  result.session->send(
      tko::Message::from_bytes(std::vector<std::uint8_t>(30'000, 5), &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(3));
  EXPECT_EQ(delivered, 30'000u);
  world.mantts(0).close_session(*result.session);
  EXPECT_EQ(world.mantts(0).active_sessions(), 0u);
  EXPECT_EQ(world.mantts(0).stats().sessions_closed, 1u);
}

TEST_F(EntityFixture, ExplicitReconfigurationPropagatesToPeer) {
  MantttsEntity::OpenResult result;
  world.mantts(0).open_session(bulk_acd_for(1), [&](auto r) { result = std::move(r); });
  world.run_for(sim::SimTime::seconds(1));
  ASSERT_NE(result.session, nullptr);
  world.run_for(sim::SimTime::seconds(1));

  auto cfg = result.session->config();
  cfg.recovery = cfg.recovery == RecoveryScheme::kGoBackN ? RecoveryScheme::kSelectiveRepeat
                                                          : RecoveryScheme::kGoBackN;
  world.mantts(0).reconfigure_session(*result.session, cfg);
  world.run_for(sim::SimTime::seconds(1));

  EXPECT_EQ(result.session->config().recovery, cfg.recovery);
  auto* passive = world.transport(1).find_session(result.session->id());
  ASSERT_NE(passive, nullptr);
  EXPECT_EQ(passive->config().recovery, cfg.recovery);
  EXPECT_EQ(world.mantts(0).stats().reconfigs_sent, 1u);
  EXPECT_EQ(world.mantts(1).stats().reconfigs_received, 1u);
}

TEST_F(EntityFixture, QosCallbackFires) {
  MantttsEntity::OpenResult result;
  world.mantts(0).open_session(voice_acd_for(1), [&](auto r) { result = std::move(r); });
  ASSERT_NE(result.session, nullptr);
  int notified = 0;
  world.mantts(0).set_qos_callback(*result.session, [&](const SessionConfig&) { ++notified; });
  auto cfg = result.session->config();
  cfg.ack = AckScheme::kImmediate;
  world.mantts(0).reconfigure_session(*result.session, cfg);
  EXPECT_EQ(notified, 1);
}

TEST_F(EntityFixture, MetricsCollectedWhenAcdAsks) {
  Acd acd = bulk_acd_for(1);
  acd.collect_metrics = true;
  MantttsEntity::OpenResult result;
  world.mantts(0).open_session(acd, [&](auto r) { result = std::move(r); });
  world.run_for(sim::SimTime::seconds(1));
  ASSERT_NE(result.session, nullptr);
  result.session->send(
      tko::Message::from_bytes(std::vector<std::uint8_t>(10'000, 2), &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_GT(world.repository().total_samples(), 0u);
}

}  // namespace
}  // namespace adaptive::mantts
