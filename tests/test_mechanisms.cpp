// Unit tests for the TKO session-architecture mechanisms, driven through a
// fake SessionCore so each mechanism is exercised in isolation, plus the
// Context/segue and Synthesizer/template machinery.
#include "tko/sa/ack_strategy.hpp"
#include "tko/sa/connection_mgmt.hpp"
#include "tko/sa/context.hpp"
#include "tko/sa/error_detection.hpp"
#include "tko/sa/fec.hpp"
#include "tko/sa/gbn.hpp"
#include "tko/sa/reliability.hpp"
#include "tko/sa/rtt_estimator.hpp"
#include "tko/sa/selective_repeat.hpp"
#include "tko/sa/sequencing.hpp"
#include "tko/sa/synthesizer.hpp"
#include "tko/sa/templates.hpp"
#include "tko/sa/transmission_ctrl.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

namespace adaptive::tko::sa {
namespace {

class FakeCore final : public SessionCore {
public:
  FakeCore() : timers_(sched) {}

  void emit(Pdu&& p) override { emitted.push_back(std::move(p)); }
  void deliver(Message&& m) override { delivered.push_back(m.linearize()); }
  os::TimerFacility& timers() override { return timers_; }
  os::BufferPool& buffers() override { return pool_; }
  [[nodiscard]] sim::SimTime now() const override { return sched.now(); }
  [[nodiscard]] std::size_t receiver_count() const override { return receivers; }
  void tx_ready() override { ++tx_ready_calls; }
  void connection_established() override { ++established; }
  void connection_closed(bool aborted) override { aborted ? ++aborts : ++closes; }
  void loss_signal() override { ++losses; }
  void count(std::string_view metric, double value) override {
    counts[std::string(metric)] += value;
  }

  [[nodiscard]] std::size_t sent(PduType t) const {
    std::size_t n = 0;
    for (const auto& p : emitted) {
      if (p.type == t) ++n;
    }
    return n;
  }

  sim::EventScheduler sched;
  os::TimerFacility timers_;
  os::BufferPool pool_;
  std::vector<Pdu> emitted;
  std::vector<std::vector<std::uint8_t>> delivered;
  std::size_t receivers = 1;
  int tx_ready_calls = 0, established = 0, closes = 0, aborts = 0, losses = 0;
  std::map<std::string, double> counts;
};

Message msg(std::initializer_list<int> v, os::BufferPool* pool = nullptr) {
  std::vector<std::uint8_t> b;
  for (int x : v) b.push_back(static_cast<std::uint8_t>(x));
  return Message::from_bytes(b, pool);
}

Pdu data_pdu(std::uint32_t seq, std::initializer_list<int> payload = {1, 2, 3},
             std::uint32_t aux = 0) {
  Pdu p;
  p.type = PduType::kData;
  p.seq = seq;
  p.aux = aux;
  p.payload = msg(payload);
  return p;
}

Pdu ack_pdu(std::uint32_t cum, std::uint32_t bitmap = 0) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = cum;
  p.aux = bitmap;
  return p;
}

// ---------------------------------------------------------------------------
// RttEstimator
// ---------------------------------------------------------------------------

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator rtt;
  rtt.sample(sim::SimTime::milliseconds(100));
  EXPECT_EQ(rtt.srtt(), sim::SimTime::milliseconds(100));
  EXPECT_EQ(rtt.rttvar(), sim::SimTime::milliseconds(50));
  // RTO = srtt + 4*rttvar = 300ms.
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(300));
}

TEST(RttEstimator, ConvergesOnStableRtt) {
  RttEstimator rtt;
  for (int i = 0; i < 100; ++i) rtt.sample(sim::SimTime::milliseconds(50));
  EXPECT_NEAR(rtt.srtt().ms(), 50.0, 1.0);
  EXPECT_LT(rtt.rttvar().ms(), 2.0);
  // RTO converges to srtt plus its 25% safety margin.
  EXPECT_LT(rtt.rto().ms(), 65.0);
  EXPECT_GE(rtt.rto().ms(), 60.0);
}

TEST(RttEstimator, BackoffDoublesAndClears) {
  RttEstimator rtt(sim::SimTime::milliseconds(200));
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(200));
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(400));
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(800));
  rtt.clear_backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(200));
}

TEST(RttEstimator, BackoffIsCapped) {
  RttEstimator rtt(sim::SimTime::milliseconds(100));
  for (int i = 0; i < 20; ++i) rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(6400));  // 64x cap
}

TEST(RttEstimator, RtoHasFloor) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.sample(sim::SimTime::microseconds(10));
  EXPECT_GE(rtt.rto(), sim::SimTime::milliseconds(1));
}

// ---------------------------------------------------------------------------
// Ack strategies
// ---------------------------------------------------------------------------

TEST(AckStrategies, ImmediateFiresEveryTime) {
  FakeCore core;
  ImmediateAck ack;
  ack.attach(core);
  int fired = 0;
  ack.set_emitter([&] { ++fired; });
  ack.on_data_received(true);
  ack.on_data_received(true);
  EXPECT_EQ(fired, 2);
}

TEST(AckStrategies, NoAckNeverFires) {
  FakeCore core;
  NoAck ack;
  ack.attach(core);
  int fired = 0;
  ack.set_emitter([&] { ++fired; });
  ack.on_data_received(true);
  ack.flush();
  EXPECT_EQ(fired, 0);
}

TEST(AckStrategies, DelayedAcksEverySecondSegment) {
  FakeCore core;
  DelayedAck ack(sim::SimTime::milliseconds(20));
  ack.attach(core);
  int fired = 0;
  ack.set_emitter([&] { ++fired; });
  ack.on_data_received(true);
  EXPECT_EQ(fired, 0);  // first segment waits
  ack.on_data_received(true);
  EXPECT_EQ(fired, 1);  // second acks immediately (TCP rule)
  ack.on_data_received(true);
  EXPECT_EQ(fired, 1);  // a lone third waits for the timer...
  core.sched.run();
  EXPECT_EQ(fired, 2);  // ...which fires at the delay
  EXPECT_EQ(core.sched.now(), sim::SimTime::milliseconds(20));
}

TEST(AckStrategies, DelayedAcksImmediatelyOnOutOfOrder) {
  FakeCore core;
  DelayedAck ack(sim::SimTime::milliseconds(20));
  ack.attach(core);
  int fired = 0;
  ack.set_emitter([&] { ++fired; });
  ack.on_data_received(false);
  EXPECT_EQ(fired, 1);
}

TEST(AckStrategies, EveryNFiresOnNth) {
  FakeCore core;
  EveryNAck ack(3);
  ack.attach(core);
  int fired = 0;
  ack.set_emitter([&] { ++fired; });
  ack.on_data_received(true);
  ack.on_data_received(true);
  EXPECT_EQ(fired, 0);
  ack.on_data_received(true);
  EXPECT_EQ(fired, 1);
  ack.flush();
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// Sequencing
// ---------------------------------------------------------------------------

TEST(Sequencing, PassThroughDeliversImmediately) {
  FakeCore core;
  PassThrough s;
  s.attach(core);
  s.offer(5, msg({5}));
  s.offer(2, msg({2}));
  ASSERT_EQ(core.delivered.size(), 2u);
  EXPECT_EQ(core.delivered[0][0], 5);
  EXPECT_EQ(core.delivered[1][0], 2);
}

TEST(Sequencing, ResequencerHoldsUntilGapFills) {
  FakeCore core;
  Resequencer s;
  s.attach(core);
  s.offer(2, msg({2}));
  s.offer(3, msg({3}));
  EXPECT_TRUE(core.delivered.empty());
  EXPECT_EQ(s.held(), 2u);
  s.offer(1, msg({1}));
  ASSERT_EQ(core.delivered.size(), 3u);
  EXPECT_EQ(core.delivered[0][0], 1);
  EXPECT_EQ(core.delivered[1][0], 2);
  EXPECT_EQ(core.delivered[2][0], 3);
  EXPECT_EQ(s.held(), 0u);
}

TEST(Sequencing, ResequencerGapSkipReleasesInOrder) {
  FakeCore core;
  Resequencer s;
  s.attach(core);
  s.offer(3, msg({3}));
  s.offer(5, msg({5}));
  s.gap_skip(5);
  // 3 released (below horizon), 5 delivered (drain from new horizon).
  ASSERT_EQ(core.delivered.size(), 2u);
  EXPECT_EQ(core.delivered[0][0], 3);
  EXPECT_EQ(core.delivered[1][0], 5);
}

TEST(Sequencing, SegueResequencerToPassThroughReleasesHeld) {
  FakeCore core;
  Resequencer r;
  r.attach(core);
  r.offer(2, msg({2}));
  r.offer(4, msg({4}));
  PassThrough p;
  p.attach(core);
  p.segue_from(r);
  // No data may be lost across the segue.
  EXPECT_EQ(core.delivered.size(), 2u);
}

TEST(Sequencing, SeguePassThroughToResequencerContinues) {
  FakeCore core;
  PassThrough p;
  p.attach(core);
  p.offer(1, msg({1}));
  p.offer(2, msg({2}));
  Resequencer r;
  r.attach(core);
  r.segue_from(p);
  r.offer(3, msg({3}));
  EXPECT_EQ(core.delivered.size(), 3u);  // 3 delivers right away
  r.offer(5, msg({5}));
  EXPECT_EQ(core.delivered.size(), 3u);  // 5 held: 4 missing
}

// ---------------------------------------------------------------------------
// Transmission control
// ---------------------------------------------------------------------------

TEST(TransmissionCtrl, StopAndWaitAllowsOne) {
  FakeCore core;
  StopAndWaitTx tx;
  tx.attach(core);
  EXPECT_TRUE(tx.can_send(0));
  EXPECT_FALSE(tx.can_send(1));
  tx.on_ack(1);
  EXPECT_EQ(core.tx_ready_calls, 1);
}

TEST(TransmissionCtrl, SlidingWindowHonorsBothWindows) {
  FakeCore core;
  SlidingWindowTx tx(8);
  tx.attach(core);
  EXPECT_TRUE(tx.can_send(7));
  EXPECT_FALSE(tx.can_send(8));
  tx.on_peer_window(4);  // peer advertises less
  EXPECT_FALSE(tx.can_send(4));
  EXPECT_TRUE(tx.can_send(3));
  EXPECT_EQ(tx.advertised_window(), 8);
}

TEST(TransmissionCtrl, RateControlSpacesSends) {
  FakeCore core;
  RateControlTx tx(sim::SimTime::milliseconds(10));
  tx.attach(core);
  EXPECT_TRUE(tx.can_send(100));  // no window limit
  tx.on_pdu_sent(1000);
  EXPECT_FALSE(tx.can_send(0));
  EXPECT_EQ(tx.earliest_send(), sim::SimTime::milliseconds(10));
  core.sched.run_until(sim::SimTime::milliseconds(10));
  EXPECT_TRUE(tx.can_send(0));
}

TEST(TransmissionCtrl, RateControlGapAdjustableInPlace) {
  FakeCore core;
  RateControlTx tx(sim::SimTime::milliseconds(10));
  tx.attach(core);
  tx.set_gap(sim::SimTime::milliseconds(50));  // MANTTS congestion response
  tx.on_pdu_sent(1000);
  EXPECT_EQ(tx.earliest_send(), sim::SimTime::milliseconds(50));
}

TEST(TransmissionCtrl, SlowStartGrowsExponentiallyThenLinearly) {
  FakeCore core;
  SlowStartTx tx(64);
  tx.attach(core);
  EXPECT_FALSE(tx.can_send(1));  // cwnd starts at 1
  for (int i = 0; i < 31; ++i) tx.on_ack(1);
  EXPECT_NEAR(tx.cwnd(), 32.0, 0.01);  // ssthresh
  tx.on_ack(1);
  EXPECT_LT(tx.cwnd(), 33.0);  // now linear (1/cwnd per ack)
  EXPECT_GT(tx.cwnd(), 32.0);
}

TEST(TransmissionCtrl, SlowStartMultiplicativeDecrease) {
  FakeCore core;
  SlowStartTx tx(64);
  tx.attach(core);
  for (int i = 0; i < 20; ++i) tx.on_ack(1);
  const double before = tx.cwnd();
  tx.on_loss();
  EXPECT_NEAR(tx.cwnd(), 1.0, 0.01);
  tx.on_ack(1);
  tx.on_ack(1);
  EXPECT_LT(tx.cwnd(), before);
}

TEST(TransmissionCtrl, SegueWindowToRateKeepsPeerState) {
  FakeCore core;
  SlidingWindowTx w(16);
  w.attach(core);
  w.on_peer_window(5);
  WindowAndRateTx wr(16, sim::SimTime::milliseconds(1));
  wr.attach(core);
  wr.segue_from(w);
  EXPECT_FALSE(wr.can_send(5));  // peer window carried over
  EXPECT_TRUE(wr.can_send(4));
}

// ---------------------------------------------------------------------------
// Go-back-N
// ---------------------------------------------------------------------------

class GbnTest : public ::testing::Test {
protected:
  void SetUp() override {
    gbn = std::make_unique<GoBackN>(sim::SimTime::milliseconds(100), true);
    gbn->attach(core);
    ack_strategy.attach(core);
    sequencing.attach(core);
    gbn->wire(&ack_strategy, &sequencing);
  }
  FakeCore core;
  ImmediateAck ack_strategy;
  PassThrough sequencing;
  std::unique_ptr<GoBackN> gbn;
};

TEST_F(GbnTest, AssignsSequentialSeqs) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  ASSERT_EQ(core.emitted.size(), 2u);
  EXPECT_EQ(core.emitted[0].seq, 1u);
  EXPECT_EQ(core.emitted[1].seq, 2u);
  EXPECT_EQ(gbn->in_flight(), 2u);
  EXPECT_FALSE(gbn->all_acked());
}

TEST_F(GbnTest, CumulativeAckReleases) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  gbn->send_data(msg({3}));
  EXPECT_EQ(gbn->on_ack(ack_pdu(2), 99), 2u);
  EXPECT_EQ(gbn->in_flight(), 1u);
  EXPECT_EQ(gbn->on_ack(ack_pdu(3), 99), 1u);
  EXPECT_TRUE(gbn->all_acked());
}

TEST_F(GbnTest, TimeoutRetransmitsAllUnacked) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  core.emitted.clear();
  core.sched.run_until(sim::SimTime::milliseconds(150));
  EXPECT_EQ(core.sent(PduType::kData), 2u);  // both went again
  EXPECT_EQ(gbn->stats().retransmissions, 2u);
  EXPECT_EQ(gbn->stats().timeouts, 1u);
  EXPECT_EQ(core.losses, 1);
}

TEST_F(GbnTest, NackTriggersGoBack) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  gbn->send_data(msg({3}));
  core.emitted.clear();
  Pdu nack;
  nack.type = PduType::kNack;
  nack.aux = 2;
  gbn->on_nack(nack, 99);
  EXPECT_EQ(core.sent(PduType::kData), 2u);  // 2 and 3
}

TEST_F(GbnTest, ReceiverAcceptsInOrderOnly) {
  gbn->on_data(data_pdu(1), 99);
  gbn->on_data(data_pdu(3), 99);  // gap: discarded
  gbn->on_data(data_pdu(2), 99);
  EXPECT_EQ(core.delivered.size(), 2u);  // 1 and 2; 3 was dropped
  // Every arrival elicited an ack (immediate strategy).
  EXPECT_EQ(core.sent(PduType::kAck), 3u);
  EXPECT_EQ(core.emitted.back().ack, 2u);
}

TEST_F(GbnTest, ReceiverReacksDuplicates) {
  gbn->on_data(data_pdu(1), 99);
  gbn->on_data(data_pdu(1), 99);
  EXPECT_EQ(gbn->stats().duplicates_received, 1u);
  EXPECT_EQ(core.delivered.size(), 1u);
  EXPECT_EQ(core.sent(PduType::kAck), 2u);
}

TEST_F(GbnTest, MulticastNeedsAllReceivers) {
  core.receivers = 2;
  gbn->send_data(msg({1}));
  EXPECT_EQ(gbn->on_ack(ack_pdu(1), 50), 0u);  // only one receiver acked
  EXPECT_FALSE(gbn->all_acked());
  EXPECT_EQ(gbn->on_ack(ack_pdu(1), 51), 1u);
  EXPECT_TRUE(gbn->all_acked());
}

// ---------------------------------------------------------------------------
// Selective repeat
// ---------------------------------------------------------------------------

class SrTest : public ::testing::Test {
protected:
  void SetUp() override {
    sr = std::make_unique<SelectiveRepeat>(sim::SimTime::milliseconds(100), true);
    sr->attach(core);
    ack_strategy.attach(core);
    sequencing.attach(core);
    sr->wire(&ack_strategy, &sequencing);
  }
  FakeCore core;
  ImmediateAck ack_strategy;
  Resequencer sequencing;
  std::unique_ptr<SelectiveRepeat> sr;
};

TEST_F(SrTest, ReceiverBuffersOutOfOrderAndNacksGap) {
  sr->on_data(data_pdu(1), 99);
  sr->on_data(data_pdu(3), 99);  // gap at 2 -> NACK(2), payload buffered
  EXPECT_EQ(core.sent(PduType::kNack), 1u);
  EXPECT_EQ(core.delivered.size(), 1u);  // only 1 delivered (ordered)
  EXPECT_EQ(sr->receiver_buffered(), 1u);
  sr->on_data(data_pdu(2), 99);
  EXPECT_EQ(core.delivered.size(), 3u);
  EXPECT_EQ(sr->receiver_buffered(), 0u);
}

TEST_F(SrTest, NackNotRepeatedForSameGap) {
  sr->on_data(data_pdu(2), 99);
  sr->on_data(data_pdu(3), 99);
  sr->on_data(data_pdu(4), 99);
  EXPECT_EQ(core.sent(PduType::kNack), 1u);  // seq 1 nacked once
}

TEST_F(SrTest, SelectiveAckBitmapReportsHeld) {
  sr->on_data(data_pdu(2), 99);
  // Ack carries cum=0 and bitmap bit 1 (seq 2 = cum+2).
  const Pdu& ack = core.emitted.back();
  EXPECT_EQ(ack.type, PduType::kAck);
  EXPECT_EQ(ack.ack, 0u);
  EXPECT_EQ(ack.aux, 0b10u);
}

TEST_F(SrTest, SenderRetransmitsOnlyNackedSeq) {
  sr->send_data(msg({1}));
  sr->send_data(msg({2}));
  sr->send_data(msg({3}));
  core.emitted.clear();
  Pdu nack;
  nack.type = PduType::kNack;
  nack.aux = 2;
  sr->on_nack(nack, 99);
  EXPECT_EQ(core.sent(PduType::kData), 1u);
  EXPECT_EQ(core.emitted[0].seq, 2u);
}

TEST_F(SrTest, SackBitmapClearsRetransmitState) {
  sr->send_data(msg({1}));
  sr->send_data(msg({2}));
  sr->send_data(msg({3}));
  // Receiver got 1 and 3: cum=1, bitmap bit for 3.
  EXPECT_EQ(sr->on_ack(ack_pdu(1, 0b10), 99), 2u);  // 1 and 3 released
  EXPECT_EQ(sr->in_flight(), 1u);                   // only 2 outstanding
  core.emitted.clear();
  core.sched.run_until(sim::SimTime::milliseconds(400));
  // Timeout retransmits only seq 2.
  EXPECT_GE(core.sent(PduType::kData), 1u);
  for (const auto& p : core.emitted) {
    if (p.type == PduType::kData) {
      EXPECT_EQ(p.seq, 2u);
    }
  }
}

TEST_F(SrTest, TimeoutRetransmitsOnlyExpired) {
  sr->send_data(msg({1}));
  core.sched.run_until(sim::SimTime::milliseconds(50));
  sr->send_data(msg({2}));
  core.emitted.clear();
  // First timeout at ~100ms covers seq 1 only (seq 2 due at 150).
  core.sched.run_until(sim::SimTime::milliseconds(110));
  ASSERT_EQ(core.sent(PduType::kData), 1u);
  EXPECT_EQ(core.emitted[0].seq, 1u);
}

TEST_F(SrTest, MulticastReleasesWhenAllReceiversHold) {
  core.receivers = 2;
  sr->send_data(msg({1}));
  sr->send_data(msg({2}));
  EXPECT_EQ(sr->on_ack(ack_pdu(2), 50), 0u);
  EXPECT_EQ(sr->on_ack(ack_pdu(1, 0b1), 51), 2u);  // cum 1 + sack 2
  EXPECT_TRUE(sr->all_acked());
}

// ---------------------------------------------------------------------------
// FEC
// ---------------------------------------------------------------------------

class FecTest : public ::testing::Test {
protected:
  void SetUp() override {
    fec = std::make_unique<FecReliability>(sim::SimTime::milliseconds(100), true, 4);
    fec->attach(core);
    ack_strategy.attach(core);
    sequencing.attach(core);
    fec->wire(&ack_strategy, &sequencing);
  }
  FakeCore core;
  NoAck ack_strategy;
  PassThrough sequencing;
  std::unique_ptr<FecReliability> fec;
};

TEST_F(FecTest, EmitsParityEveryGroup) {
  for (int i = 0; i < 8; ++i) fec->send_data(msg({i}));
  EXPECT_EQ(core.sent(PduType::kData), 8u);
  EXPECT_EQ(core.sent(PduType::kFecParity), 2u);
  EXPECT_EQ(fec->stats().parity_sent, 2u);
}

TEST_F(FecTest, CloseDrainFlushesPartialGroup) {
  fec->send_data(msg({1}));
  fec->send_data(msg({2}));
  EXPECT_EQ(core.sent(PduType::kFecParity), 0u);
  fec->on_close_drain();
  EXPECT_EQ(core.sent(PduType::kFecParity), 1u);
}

TEST_F(FecTest, ReceiverRecoversSingleLossFromParity) {
  // Sender side produces the group; replay all but seq 2 into a receiver.
  FakeCore rx_core;
  FecReliability rx(sim::SimTime::milliseconds(100), true, 4);
  rx.attach(rx_core);
  NoAck rx_ack;
  PassThrough rx_seq;
  rx_ack.attach(rx_core);
  rx_seq.attach(rx_core);
  rx.wire(&rx_ack, &rx_seq);

  fec->send_data(msg({10, 11}));
  fec->send_data(msg({20, 21, 22}));
  fec->send_data(msg({30}));
  fec->send_data(msg({40, 41}));
  ASSERT_EQ(core.emitted.size(), 5u);
  for (auto& p : core.emitted) {
    if (p.type == PduType::kData && p.seq == 2) continue;  // lost
    Pdu copy;
    copy.type = p.type;
    copy.seq = p.seq;
    copy.aux = p.aux;
    copy.payload = p.payload.clone();
    rx.on_data(std::move(copy), 1);
  }
  EXPECT_EQ(rx.stats().fec_recoveries, 1u);
  ASSERT_EQ(rx_core.delivered.size(), 4u);
  // Recovered payload must be byte-exact.
  bool found = false;
  for (const auto& d : rx_core.delivered) {
    if (d == std::vector<std::uint8_t>{20, 21, 22}) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(FecTest, TwoLossesInGroupAreUnrecoverable) {
  FakeCore rx_core;
  FecReliability rx(sim::SimTime::milliseconds(100), true, 4);
  rx.attach(rx_core);
  NoAck rx_ack;
  PassThrough rx_seq;
  rx_ack.attach(rx_core);
  rx_seq.attach(rx_core);
  rx.wire(&rx_ack, &rx_seq);

  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 4; ++i) fec->send_data(msg({g * 4 + i}));
  }
  for (auto& p : core.emitted) {
    if (p.type == PduType::kData && (p.seq == 2 || p.seq == 3)) continue;  // two losses, group 1
    Pdu copy;
    copy.type = p.type;
    copy.seq = p.seq;
    copy.aux = p.aux;
    copy.payload = p.payload.clone();
    rx.on_data(std::move(copy), 1);
  }
  EXPECT_EQ(rx.stats().fec_recoveries, 0u);
  EXPECT_EQ(rx_core.delivered.size(), 10u);
  EXPECT_GE(rx.stats().unrecovered_losses, 2u);
}

// ---------------------------------------------------------------------------
// Cross-scheme segue (the paper's no-data-loss reconfiguration)
// ---------------------------------------------------------------------------

TEST(Segue, GbnToSelectiveRepeatKeepsUnacked) {
  FakeCore core;
  ImmediateAck ack;
  PassThrough seq;
  ack.attach(core);
  seq.attach(core);
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.wire(&ack, &seq);
  gbn.send_data(msg({1}));
  gbn.send_data(msg({2}));
  gbn.send_data(msg({3}));
  (void)gbn.on_ack(ack_pdu(1), 9);

  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  sr.segue_from(gbn);
  sr.wire(&ack, &seq);
  EXPECT_EQ(sr.in_flight(), 2u);  // seqs 2,3 carried across
  core.emitted.clear();
  (void)sr.on_ack(ack_pdu(3), 9);
  EXPECT_TRUE(sr.all_acked());
  // New data continues the same sequence space.
  sr.send_data(msg({4}));
  EXPECT_EQ(core.emitted.back().seq, 4u);
}

TEST(Segue, SelectiveRepeatToGbnKeepsReceiverState) {
  FakeCore core;
  ImmediateAck ack;
  Resequencer seq;
  ack.attach(core);
  seq.attach(core);
  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  sr.wire(&ack, &seq);
  sr.on_data(data_pdu(1), 9);
  sr.on_data(data_pdu(3), 9);  // buffered out of order

  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.segue_from(sr);
  gbn.wire(&ack, &seq);
  // Missing seq 2 arrives post-segue: cum jumps to 3, everything delivers.
  gbn.on_data(data_pdu(2), 9);
  EXPECT_EQ(core.delivered.size(), 3u);
  // Retransmitted 3 (e.g. from the old sender config) is a duplicate.
  gbn.on_data(data_pdu(3), 9);
  EXPECT_EQ(core.delivered.size(), 3u);
  EXPECT_EQ(gbn.stats().duplicates_received, 1u);
}

TEST(Segue, RetransmitToFecReemitsUnacked) {
  FakeCore core;
  ImmediateAck ack;
  PassThrough seq;
  ack.attach(core);
  seq.attach(core);
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  gbn.wire(&ack, &seq);
  gbn.send_data(msg({1}));
  gbn.send_data(msg({2}));
  core.emitted.clear();

  FecReliability fec(sim::SimTime::milliseconds(100), true, 4);
  fec.attach(core);
  fec.segue_from(gbn);
  fec.wire(&ack, &seq);
  // The two unacked PDUs were re-emitted so nothing can be lost.
  EXPECT_EQ(core.sent(PduType::kData), 2u);
  EXPECT_TRUE(fec.all_acked());
  // Sequence space continues.
  fec.send_data(msg({3}));
  EXPECT_EQ(core.emitted.back().seq, 3u);
}

// ---------------------------------------------------------------------------
// Connection management
// ---------------------------------------------------------------------------

TEST(ConnectionMgmt, ImplicitIsImmediatelyUsable) {
  FakeCore core;
  ImplicitConn conn(sim::SimTime::milliseconds(100), 3);
  conn.attach(core);
  EXPECT_TRUE(conn.can_carry_data());
  conn.open();
  EXPECT_EQ(core.established, 1);
  EXPECT_TRUE(core.emitted.empty());  // no handshake traffic
}

TEST(ConnectionMgmt, TwoWayHandshake) {
  FakeCore active_core, passive_core;
  SessionConfig cfg;
  ExplicitConn a(false, cfg.serialize(), sim::SimTime::milliseconds(100), 3);
  ExplicitConn p(false, cfg.serialize(), sim::SimTime::milliseconds(100), 3);
  a.attach(active_core);
  p.attach(passive_core);
  a.open();
  p.open_passive();
  ASSERT_EQ(active_core.sent(PduType::kSyn), 1u);
  EXPECT_FALSE(a.can_carry_data());
  p.on_pdu(active_core.emitted[0]);
  ASSERT_EQ(passive_core.sent(PduType::kSynAck), 1u);
  EXPECT_EQ(passive_core.established, 1);  // 2-way: passive up on SYN
  a.on_pdu(passive_core.emitted[0]);
  EXPECT_EQ(active_core.established, 1);
  EXPECT_TRUE(a.can_carry_data());
}

TEST(ConnectionMgmt, ThreeWayHandshake) {
  FakeCore ac, pc;
  SessionConfig cfg;
  ExplicitConn a(true, cfg.serialize(), sim::SimTime::milliseconds(100), 3);
  ExplicitConn p(true, cfg.serialize(), sim::SimTime::milliseconds(100), 3);
  a.attach(ac);
  p.attach(pc);
  a.open();
  p.on_pdu(ac.emitted[0]);             // SYN ->
  EXPECT_EQ(pc.established, 0);        // 3-way: passive waits for HSACK
  a.on_pdu(pc.emitted[0]);             // <- SYNACK
  EXPECT_EQ(ac.established, 1);
  ASSERT_EQ(ac.sent(PduType::kHandshakeAck), 1u);
  p.on_pdu(ac.emitted.back());         // HSACK ->
  EXPECT_EQ(pc.established, 1);
}

TEST(ConnectionMgmt, SynRetransmittedUntilGiveUp) {
  FakeCore core;
  SessionConfig cfg;
  ExplicitConn a(true, cfg.serialize(), sim::SimTime::milliseconds(100), 3);
  a.attach(core);
  a.open();
  core.sched.run();  // no peer: retries then abort
  EXPECT_EQ(core.sent(PduType::kSyn), 4u);  // initial + 3 retries
  EXPECT_EQ(core.aborts, 1);
}

TEST(ConnectionMgmt, GracefulCloseWaitsForDrain) {
  FakeCore core;
  ImplicitConn conn(sim::SimTime::milliseconds(100), 3);
  conn.attach(core);
  conn.open();
  conn.close(true);
  EXPECT_EQ(core.sent(PduType::kFin), 0u);  // waiting for drain
  conn.data_drained();
  EXPECT_EQ(core.sent(PduType::kFin), 1u);
  Pdu finack;
  finack.type = PduType::kFinAck;
  conn.on_pdu(finack);
  EXPECT_EQ(core.closes, 1);
}

TEST(ConnectionMgmt, PeerFinElicitsFinAckAndClose) {
  FakeCore core;
  ImplicitConn conn(sim::SimTime::milliseconds(100), 3);
  conn.attach(core);
  conn.open();
  Pdu fin;
  fin.type = PduType::kFin;
  conn.on_pdu(fin);
  EXPECT_EQ(core.sent(PduType::kFinAck), 1u);
  EXPECT_EQ(core.closes, 1);
}

TEST(ConnectionMgmt, AbortiveCloseIsImmediate) {
  FakeCore core;
  ImplicitConn conn(sim::SimTime::milliseconds(100), 3);
  conn.attach(core);
  conn.open();
  conn.close(false);
  EXPECT_EQ(core.sent(PduType::kAbort), 1u);
  EXPECT_EQ(core.aborts, 1);
}

// ---------------------------------------------------------------------------
// Context, synthesizer, templates, config
// ---------------------------------------------------------------------------

TEST(Config, SerializeDeserializeRoundTrip) {
  SessionConfig c = reliable_bulk_config();
  c.window_pdus = 48;
  c.inter_pdu_gap = sim::SimTime::microseconds(250);
  c.priority = 3;
  auto bytes = c.serialize();
  ASSERT_EQ(bytes.size(), SessionConfig::kWireBytes);
  auto back = SessionConfig::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, c);
}

TEST(Config, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> junk(SessionConfig::kWireBytes, 0xFF);
  EXPECT_FALSE(SessionConfig::deserialize(junk).has_value());
  EXPECT_FALSE(SessionConfig::deserialize(std::vector<std::uint8_t>(3)).has_value());
}

TEST(Config, DescribeMentionsKeyChoices) {
  const auto d = tcp_compat_config().describe();
  EXPECT_NE(d.find("go-back-n"), std::string::npos);
  EXPECT_NE(d.find("slow-start"), std::string::npos);
}

TEST(Context, SynthesizeAndAttachAllSlots) {
  FakeCore core;
  Synthesizer synth;
  auto ctx = synth.synthesize(reliable_bulk_config());
  EXPECT_TRUE(ctx->complete());
  ctx->attach_all(core);
  EXPECT_EQ(ctx->reliability().name(), "selective-repeat");
  EXPECT_EQ(ctx->transmission().name(), "sliding-window");
  EXPECT_EQ(ctx->connection().name(), "explicit-2way");
  EXPECT_NE(ctx->describe().find("selective-repeat"), std::string::npos);
}

TEST(Context, SegueSwapsAndCounts) {
  FakeCore core;
  Synthesizer synth;
  auto ctx = synth.synthesize(reliable_bulk_config());
  ctx->attach_all(core);
  ctx->reliability().send_data(msg({1}, &core.pool_));
  auto cfg = reliable_bulk_config();
  cfg.recovery = RecoveryScheme::kGoBackN;
  ctx->segue(Synthesizer::make_mechanism(MechanismSlot::kReliability, cfg));
  EXPECT_EQ(ctx->reliability().name(), "go-back-n");
  EXPECT_EQ(ctx->reliability().in_flight(), 1u);  // state carried
  EXPECT_EQ(ctx->reconfigurations(), 1u);
  EXPECT_GT(core.counts["context.segue"], 0.0);
}

TEST(Context, IncompleteAttachThrows) {
  FakeCore core;
  Context ctx;
  ctx.install(std::make_unique<NoAck>());
  EXPECT_FALSE(ctx.complete());
  EXPECT_THROW(ctx.attach_all(core), std::logic_error);
}

TEST(Synthesizer, ValidatesInconsistentConfigs) {
  SessionConfig bad = reliable_bulk_config();
  bad.ack = AckScheme::kNone;  // retransmission without acks
  EXPECT_FALSE(Synthesizer::validate(bad).empty());
  Synthesizer synth;
  EXPECT_THROW((void)synth.synthesize(bad), std::invalid_argument);
  EXPECT_EQ(synth.stats().validation_failures, 1u);

  SessionConfig bad2 = reliable_bulk_config();
  bad2.transmission = TransmissionScheme::kRateControl;
  bad2.inter_pdu_gap = sim::SimTime::zero();
  EXPECT_FALSE(Synthesizer::validate(bad2).empty());

  SessionConfig bad3 = reliable_bulk_config();
  bad3.detection = DetectionScheme::kNone;
  EXPECT_FALSE(Synthesizer::validate(bad3).empty());

  EXPECT_TRUE(Synthesizer::validate(udp_compat_config()).empty());
  EXPECT_TRUE(Synthesizer::validate(tcp_compat_config()).empty());
}

TEST(Templates, CacheHitSkipsPlanningCost) {
  auto cache = TemplateCache::with_defaults();
  Synthesizer synth(&cache);
  (void)synth.synthesize(tcp_compat_config());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(synth.last_cost_instr(), kTemplateHitInstr);

  SessionConfig custom = tcp_compat_config();
  custom.window_pdus = 17;  // not in cache
  (void)synth.synthesize(custom);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(synth.last_cost_instr(), kSynthesisInstr);
}

TEST(Templates, LookupByName) {
  auto cache = TemplateCache::with_defaults();
  const auto* t = cache.lookup_name("udp-compat");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, TemplateKind::kStatic);
  EXPECT_EQ(t->config, udp_compat_config());
  EXPECT_EQ(cache.lookup_name("nonexistent"), nullptr);
}

TEST(ErrorDetectionMechanisms, FactoryMatchesScheme) {
  EXPECT_EQ(make_error_detection(DetectionScheme::kNone)->kind(), ChecksumKind::kNone);
  auto hdr = make_error_detection(DetectionScheme::kInternet16Header);
  EXPECT_EQ(hdr->kind(), ChecksumKind::kInternet16);
  EXPECT_EQ(hdr->placement(), ChecksumPlacement::kHeader);
  auto crc = make_error_detection(DetectionScheme::kCrc32Trailer);
  EXPECT_EQ(crc->kind(), ChecksumKind::kCrc32);
  EXPECT_EQ(crc->placement(), ChecksumPlacement::kTrailer);
}

}  // namespace
}  // namespace adaptive::tko::sa
