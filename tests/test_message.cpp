// Tests for TKO_Message (zero-copy rope), checksums, and the PDU codec.
#include "tko/checksum.hpp"
#include "tko/message.hpp"
#include "tko/pdu.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <span>

namespace adaptive::tko {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

TEST(Message, FromBytesAndLinearize) {
  const auto data = iota_bytes(100);
  auto m = Message::from_bytes(data);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.linearize(), data);
}

TEST(Message, PushPopHeaders) {
  auto m = Message::from_bytes(iota_bytes(10));
  m.push(bytes({0xAA, 0xBB}));
  EXPECT_EQ(m.size(), 12u);
  const auto h = m.pop(2);
  EXPECT_EQ(h, bytes({0xAA, 0xBB}));
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(m.linearize(), iota_bytes(10));
}

TEST(Message, PushDoesNotCopyPayload) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(1000), &pool);
  const auto copies_before = pool.stats().copied_bytes;
  m.push(bytes({1, 2, 3, 4}));
  EXPECT_EQ(pool.stats().copied_bytes, copies_before);  // header prepend is copy-free
}

TEST(Message, PopAcrossSegments) {
  auto m = Message::from_bytes(bytes({1, 2}));
  m.push(bytes({0xFF}));  // segments: [FF][1 2]
  const auto head = m.pop(2);
  EXPECT_EQ(head, bytes({0xFF, 1}));
  EXPECT_EQ(m.linearize(), bytes({2}));
  EXPECT_THROW((void)m.pop(5), std::out_of_range);
}

TEST(Message, PeekDoesNotConsume) {
  auto m = Message::from_bytes(iota_bytes(16));
  EXPECT_EQ(m.peek(4), bytes({0, 1, 2, 3}));
  EXPECT_EQ(m.size(), 16u);
}

TEST(Message, SplitSharesBuffers) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(100), &pool);
  const auto copies_before = pool.stats().copied_bytes;
  auto tail = m.split(40);
  EXPECT_EQ(m.size(), 40u);
  EXPECT_EQ(tail.size(), 60u);
  EXPECT_EQ(pool.stats().copied_bytes, copies_before);  // zero-copy split
  auto all = m.linearize();
  const auto t = tail.linearize();
  all.insert(all.end(), t.begin(), t.end());
  EXPECT_EQ(all, iota_bytes(100));
}

TEST(Message, SplitEdgeCases) {
  auto m = Message::from_bytes(iota_bytes(10));
  auto tail = m.split(0);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(tail.size(), 10u);
  auto tail2 = tail.split(10);
  EXPECT_EQ(tail.size(), 10u);
  EXPECT_EQ(tail2.size(), 0u);
  EXPECT_THROW((void)tail.split(11), std::out_of_range);
}

TEST(Message, ConcatReassembles) {
  auto a = Message::from_bytes(bytes({1, 2, 3}));
  auto b = Message::from_bytes(bytes({4, 5}));
  a.concat(std::move(b));
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.linearize(), bytes({1, 2, 3, 4, 5}));
}

TEST(Message, CloneIsShallowDeepCopyIsNot) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(50), &pool);
  pool.reset_stats();
  auto shallow = m.clone();
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  auto deep = m.deep_copy();
  EXPECT_GE(pool.stats().copied_bytes, 50u);
  EXPECT_EQ(shallow.linearize(), deep.linearize());
}

TEST(Message, SegmentIterationCoversAllBytes) {
  auto m = Message::from_bytes(iota_bytes(10));
  m.push(bytes({0xEE}));
  m.append(bytes({0xDD}));
  std::vector<std::uint8_t> seen;
  m.for_each_segment([&](std::span<const std::uint8_t> s) {
    seen.insert(seen.end(), s.begin(), s.end());
  });
  EXPECT_EQ(seen, m.linearize());
  EXPECT_EQ(m.segment_count(), 3u);
}

// ---------------------------------------------------------------------------
// Copy-ledger discipline: the pool's copy counters must agree exactly with
// real memcpy traffic. Producing bytes into a message (append/push/filled)
// is ingress and records nothing; every read or gather that physically
// duplicates message bytes records exactly the bytes moved.
// ---------------------------------------------------------------------------

TEST(CopyLedger, IngressRecordsNothing) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(100), &pool);
  m.append(iota_bytes(50));
  m.push(bytes({1, 2, 3, 4}));
  auto w = m.push_uninit(8);
  std::fill(w.begin(), w.end(), std::uint8_t{0});
  EXPECT_EQ(pool.stats().copies, 0u);
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
}

TEST(CopyLedger, PopPeekRecordExactBytes) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(100), &pool);
  (void)m.peek(8);
  EXPECT_EQ(pool.stats().copied_bytes, 8u);
  (void)m.pop(12);
  EXPECT_EQ(pool.stats().copied_bytes, 20u);
  EXPECT_EQ(pool.stats().copies, 2u);
}

TEST(CopyLedger, ConsumeTruncateSplitConcatAreCopyFree) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(60), &pool);
  m.push(bytes({9, 9, 9, 9}));
  m.consume(4);                 // offset adjust, not a pop
  auto tail = m.split(20);      // shared buffers
  m.concat(std::move(tail));    // splice back
  m.truncate(30);               // segment trim
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  EXPECT_EQ(m.linearize(), iota_bytes(30));
  EXPECT_EQ(pool.stats().copied_bytes, 30u);  // the linearize itself
}

TEST(CopyLedger, LinearizeRecordsOnlyWhenBytesExist) {
  os::BufferPool pool;
  Message empty(&pool);
  EXPECT_TRUE(empty.linearize().empty());
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  // A single-segment message still physically duplicates every byte into
  // the returned vector — the ledger must say so (the old predicate
  // recorded for any non-empty message by accident of a tautology; the
  // count itself was right, the reasoning was not).
  auto m = Message::from_bytes(iota_bytes(50), &pool);
  (void)m.linearize();
  EXPECT_EQ(pool.stats().copied_bytes, 50u);
  EXPECT_EQ(pool.stats().copies, 1u);
}

TEST(CopyLedger, DeepCopyRecordsOnePassExactly) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(40), &pool);
  m.push(bytes({1, 2}));
  m.append(bytes({3, 4}));  // 3 segments, 44 bytes
  pool.reset_stats();
  auto deep = m.deep_copy();
  // One physical gather pass: exactly size() bytes, exactly one ledger
  // entry (the old implementation copied twice and recorded once).
  EXPECT_EQ(pool.stats().copied_bytes, 44u);
  EXPECT_EQ(pool.stats().copies, 1u);
  EXPECT_EQ(deep.segment_count(), 1u);
  EXPECT_EQ(deep.linearize(), m.linearize());
}

TEST(CopyLedger, ContiguousPrefixBorrowsWithoutRecording) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(10), &pool);
  m.push(bytes({7, 8, 9}));
  const auto got = m.contiguous_prefix(3);  // front segment covers it
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 7);
  EXPECT_EQ(got[2], 9);
  EXPECT_TRUE(m.contiguous_prefix(4).empty());  // crosses a boundary: decline
  EXPECT_EQ(m.size(), 13u);
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
}

TEST(CopyLedger, FlatBorrowsSingleSegmentGathersMultiOnce) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(64), &pool);
  const auto borrowed = m.flat();
  EXPECT_EQ(borrowed.size(), 64u);
  EXPECT_EQ(pool.stats().copied_bytes, 0u);  // single segment: pure borrow
  m.append(iota_bytes(36));
  const auto gathered = m.flat();
  EXPECT_EQ(gathered.size(), 100u);
  EXPECT_EQ(pool.stats().copied_bytes, 100u);  // one recorded gather
  (void)m.flat();
  EXPECT_EQ(pool.stats().copied_bytes, 100u);  // now flat: borrow again
}

TEST(CopyLedger, MutableBytesCopiesOnlyWhenAliased) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(32), &pool);
  (void)m.mutable_bytes();
  EXPECT_EQ(pool.stats().copied_bytes, 0u);  // sole owner: in-place
  auto keeper = m.clone();                   // retransmission-store alias
  auto view = m.mutable_bytes();
  EXPECT_EQ(pool.stats().copied_bytes, 32u);  // unshare recorded
  view[0] = 0xFF;
  EXPECT_EQ(keeper.peek(1)[0], 0u);  // the shared copy stayed pristine
}

TEST(Lifecycle, ConcatAdoptsTailIdAndSplitPropagates) {
  auto m = Message::from_bytes(iota_bytes(20));
  m.set_lifecycle(9);
  auto tail = m.split(12);
  EXPECT_EQ(tail.lifecycle(), 9u);  // split propagates
  // Reassembly starts from an untracked accumulator; splicing in a tracked
  // segment must keep the TSDU attributable (the bug fix: concat used to
  // drop the tail's id and break span stitching in unites::assemble_spans).
  Message assembly;
  assembly.concat(std::move(tail));
  EXPECT_EQ(assembly.lifecycle(), 9u);
  assembly.concat(std::move(m));
  EXPECT_EQ(assembly.lifecycle(), 9u);  // an existing id is never overwritten
  auto other = Message::from_bytes(iota_bytes(4));
  other.set_lifecycle(5);
  assembly.concat(std::move(other));
  EXPECT_EQ(assembly.lifecycle(), 9u);
}

TEST(Lifecycle, SurvivesSplitConcatRoundTrip) {
  auto m = Message::from_bytes(iota_bytes(30));
  m.set_lifecycle(3);
  auto tail = m.split(10);
  m.concat(std::move(tail));
  EXPECT_EQ(m.lifecycle(), 3u);
  EXPECT_EQ(m.linearize(), iota_bytes(30));
  EXPECT_EQ(m.deep_copy().lifecycle(), 3u);
}

TEST(ZeroCopy, SendPathKeepsPayloadSegmentsUntouched) {
  // encode_pdu must produce headers in place and stream the checksum: the
  // payload segments ride through with no recorded copy in either trailer
  // checksum mode.
  for (const auto kind : {ChecksumKind::kInternet16, ChecksumKind::kCrc32}) {
    os::BufferPool pool;
    Pdu p;
    p.type = PduType::kData;
    p.payload = Message::from_bytes(iota_bytes(1200), &pool);
    pool.reset_stats();
    auto wire = encode_pdu(std::move(p), kind, ChecksumPlacement::kTrailer);
    EXPECT_EQ(pool.stats().copied_bytes, 0u);
    // Decode strips the header by offset adjustment, verifies the trailer
    // in place, and hands the payload segments back: still no copies.
    auto r = decode_pdu(std::move(wire));
    ASSERT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(pool.stats().copied_bytes, 0u);
    EXPECT_EQ(r.pdu.payload.size(), 1200u);
  }
}

TEST(ZeroCopy, StreamingInternetChecksumMatchesFlatAtOddBoundaries) {
  const auto data = iota_bytes(1001);  // odd total
  InternetChecksum inc;
  // Feed with odd-length segments so word sums straddle every boundary.
  inc.update(std::span(data).subspan(0, 1));
  inc.update(std::span(data).subspan(1, 333));
  inc.update(std::span(data).subspan(334, 5));
  inc.update(std::span(data).subspan(339));
  EXPECT_EQ(inc.value(), internet_checksum(data));
}

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: bytes 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const auto data = bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const auto even = bytes({0x12, 0x34});
  const auto odd = bytes({0x12, 0x34, 0x56});
  EXPECT_NE(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, Crc32KnownVector) {
  const std::string s = "123456789";
  std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Checksum, Crc32IncrementalMatchesOneShot) {
  const auto data = iota_bytes(1000);
  Crc32 inc;
  inc.update(std::span(data).subspan(0, 137));
  inc.update(std::span(data).subspan(137, 400));
  inc.update(std::span(data).subspan(537));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Checksum, DetectsSingleBitFlip) {
  auto data = iota_bytes(500);
  const auto before16 = internet_checksum(data);
  const auto before32 = crc32(data);
  data[250] ^= 0x10;
  EXPECT_NE(internet_checksum(data), before16);
  EXPECT_NE(crc32(data), before32);
}

class PduCodec : public ::testing::TestWithParam<std::pair<ChecksumKind, ChecksumPlacement>> {};

TEST_P(PduCodec, RoundTrip) {
  const auto [kind, placement] = GetParam();
  Pdu p;
  p.type = PduType::kData;
  p.session_id = 0xDEADBEEF;
  p.seq = 42;
  p.ack = 41;
  p.window = 16;
  p.aux = 7;
  p.payload = Message::from_bytes(iota_bytes(300));

  auto wire = encode_pdu(std::move(p), kind, placement);
  auto r = decode_pdu(std::move(wire));
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.pdu.type, PduType::kData);
  EXPECT_EQ(r.pdu.session_id, 0xDEADBEEFu);
  EXPECT_EQ(r.pdu.seq, 42u);
  EXPECT_EQ(r.pdu.ack, 41u);
  EXPECT_EQ(r.pdu.window, 16u);
  if (placement == ChecksumPlacement::kTrailer || kind == ChecksumKind::kNone) {
    EXPECT_EQ(r.pdu.aux, 7u);  // header placement sacrifices aux
  }
  EXPECT_EQ(r.pdu.payload.linearize(), iota_bytes(300));
}

TEST_P(PduCodec, DetectsPayloadCorruption) {
  const auto [kind, placement] = GetParam();
  if (kind == ChecksumKind::kNone) GTEST_SKIP() << "no detection configured";
  Pdu p;
  p.type = PduType::kData;
  p.seq = 1;
  p.payload = Message::from_bytes(iota_bytes(200));
  auto wire = encode_pdu(std::move(p), kind, placement);
  auto corrupt = wire.linearize();
  corrupt[kPduHeaderBytes + 50] ^= 0x01;
  auto r = decode_pdu(Message::from_bytes(corrupt));
  EXPECT_EQ(r.status, DecodeStatus::kChecksumMismatch);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectionModes, PduCodec,
    ::testing::Values(std::pair{ChecksumKind::kNone, ChecksumPlacement::kTrailer},
                      std::pair{ChecksumKind::kInternet16, ChecksumPlacement::kHeader},
                      std::pair{ChecksumKind::kInternet16, ChecksumPlacement::kTrailer},
                      std::pair{ChecksumKind::kCrc32, ChecksumPlacement::kTrailer}));

TEST(PduCodec, RejectsMalformed) {
  EXPECT_EQ(decode_pdu(Message::from_bytes(bytes({1, 2, 3}))).status, DecodeStatus::kMalformed);
  // Bad version byte.
  std::vector<std::uint8_t> junk(kPduHeaderBytes, 0);
  junk[0] = 99;
  EXPECT_EQ(decode_pdu(Message::from_bytes(junk)).status, DecodeStatus::kMalformed);
}

TEST(PduCodec, RejectsLengthMismatch) {
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(50));
  auto wire = encode_pdu(std::move(p), ChecksumKind::kNone, ChecksumPlacement::kTrailer);
  auto trimmed = wire.linearize();
  trimmed.pop_back();
  EXPECT_EQ(decode_pdu(Message::from_bytes(trimmed)).status, DecodeStatus::kMalformed);
}

TEST(PduCodec, EmptyPayloadRoundTrip) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = 10;
  auto wire = encode_pdu(std::move(p), ChecksumKind::kInternet16, ChecksumPlacement::kTrailer);
  auto r = decode_pdu(std::move(wire));
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.pdu.type, PduType::kAck);
  EXPECT_EQ(r.pdu.ack, 10u);
  EXPECT_EQ(r.pdu.payload.size(), 0u);
}

TEST(PduCodec, TrailerPlacementKeepsPayloadZeroCopy) {
  os::BufferPool pool;
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(1000), &pool);
  pool.reset_stats();
  auto wire = encode_pdu(std::move(p), ChecksumKind::kCrc32, ChecksumPlacement::kTrailer);
  // CRC32 streams over segments: no payload copy during encode.
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  EXPECT_GT(wire.segment_count(), 1u);
}

TEST(PduCodec, HeaderPlacementForcesLinearization) {
  os::BufferPool pool;
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(1000), &pool);
  pool.reset_stats();
  auto wire = encode_pdu(std::move(p), ChecksumKind::kInternet16, ChecksumPlacement::kHeader);
  EXPECT_GE(pool.stats().copied_bytes, 1000u);  // the extra pass footnote 2 decries
  EXPECT_EQ(wire.segment_count(), 1u);
}

}  // namespace
}  // namespace adaptive::tko
