// Tests for TKO_Message (zero-copy rope), checksums, and the PDU codec.
#include "tko/checksum.hpp"
#include "tko/message.hpp"
#include "tko/pdu.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace adaptive::tko {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

std::vector<std::uint8_t> iota_bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), 0);
  return out;
}

TEST(Message, FromBytesAndLinearize) {
  const auto data = iota_bytes(100);
  auto m = Message::from_bytes(data);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.linearize(), data);
}

TEST(Message, PushPopHeaders) {
  auto m = Message::from_bytes(iota_bytes(10));
  m.push(bytes({0xAA, 0xBB}));
  EXPECT_EQ(m.size(), 12u);
  const auto h = m.pop(2);
  EXPECT_EQ(h, bytes({0xAA, 0xBB}));
  EXPECT_EQ(m.size(), 10u);
  EXPECT_EQ(m.linearize(), iota_bytes(10));
}

TEST(Message, PushDoesNotCopyPayload) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(1000), &pool);
  const auto copies_before = pool.stats().copied_bytes;
  m.push(bytes({1, 2, 3, 4}));
  EXPECT_EQ(pool.stats().copied_bytes, copies_before);  // header prepend is copy-free
}

TEST(Message, PopAcrossSegments) {
  auto m = Message::from_bytes(bytes({1, 2}));
  m.push(bytes({0xFF}));  // segments: [FF][1 2]
  const auto head = m.pop(2);
  EXPECT_EQ(head, bytes({0xFF, 1}));
  EXPECT_EQ(m.linearize(), bytes({2}));
  EXPECT_THROW((void)m.pop(5), std::out_of_range);
}

TEST(Message, PeekDoesNotConsume) {
  auto m = Message::from_bytes(iota_bytes(16));
  EXPECT_EQ(m.peek(4), bytes({0, 1, 2, 3}));
  EXPECT_EQ(m.size(), 16u);
}

TEST(Message, SplitSharesBuffers) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(100), &pool);
  const auto copies_before = pool.stats().copied_bytes;
  auto tail = m.split(40);
  EXPECT_EQ(m.size(), 40u);
  EXPECT_EQ(tail.size(), 60u);
  EXPECT_EQ(pool.stats().copied_bytes, copies_before);  // zero-copy split
  auto all = m.linearize();
  const auto t = tail.linearize();
  all.insert(all.end(), t.begin(), t.end());
  EXPECT_EQ(all, iota_bytes(100));
}

TEST(Message, SplitEdgeCases) {
  auto m = Message::from_bytes(iota_bytes(10));
  auto tail = m.split(0);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(tail.size(), 10u);
  auto tail2 = tail.split(10);
  EXPECT_EQ(tail.size(), 10u);
  EXPECT_EQ(tail2.size(), 0u);
  EXPECT_THROW((void)tail.split(11), std::out_of_range);
}

TEST(Message, ConcatReassembles) {
  auto a = Message::from_bytes(bytes({1, 2, 3}));
  auto b = Message::from_bytes(bytes({4, 5}));
  a.concat(std::move(b));
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.linearize(), bytes({1, 2, 3, 4, 5}));
}

TEST(Message, CloneIsShallowDeepCopyIsNot) {
  os::BufferPool pool;
  auto m = Message::from_bytes(iota_bytes(50), &pool);
  pool.reset_stats();
  auto shallow = m.clone();
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  auto deep = m.deep_copy();
  EXPECT_GE(pool.stats().copied_bytes, 50u);
  EXPECT_EQ(shallow.linearize(), deep.linearize());
}

TEST(Message, SegmentIterationCoversAllBytes) {
  auto m = Message::from_bytes(iota_bytes(10));
  m.push(bytes({0xEE}));
  m.append(bytes({0xDD}));
  std::vector<std::uint8_t> seen;
  m.for_each_segment([&](std::span<const std::uint8_t> s) {
    seen.insert(seen.end(), s.begin(), s.end());
  });
  EXPECT_EQ(seen, m.linearize());
  EXPECT_EQ(m.segment_count(), 3u);
}

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: bytes 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  const auto data = bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const auto even = bytes({0x12, 0x34});
  const auto odd = bytes({0x12, 0x34, 0x56});
  EXPECT_NE(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, Crc32KnownVector) {
  const std::string s = "123456789";
  std::vector<std::uint8_t> data(s.begin(), s.end());
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Checksum, Crc32IncrementalMatchesOneShot) {
  const auto data = iota_bytes(1000);
  Crc32 inc;
  inc.update(std::span(data).subspan(0, 137));
  inc.update(std::span(data).subspan(137, 400));
  inc.update(std::span(data).subspan(537));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Checksum, DetectsSingleBitFlip) {
  auto data = iota_bytes(500);
  const auto before16 = internet_checksum(data);
  const auto before32 = crc32(data);
  data[250] ^= 0x10;
  EXPECT_NE(internet_checksum(data), before16);
  EXPECT_NE(crc32(data), before32);
}

class PduCodec : public ::testing::TestWithParam<std::pair<ChecksumKind, ChecksumPlacement>> {};

TEST_P(PduCodec, RoundTrip) {
  const auto [kind, placement] = GetParam();
  Pdu p;
  p.type = PduType::kData;
  p.session_id = 0xDEADBEEF;
  p.seq = 42;
  p.ack = 41;
  p.window = 16;
  p.aux = 7;
  p.payload = Message::from_bytes(iota_bytes(300));

  auto wire = encode_pdu(std::move(p), kind, placement);
  auto r = decode_pdu(std::move(wire));
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.pdu.type, PduType::kData);
  EXPECT_EQ(r.pdu.session_id, 0xDEADBEEFu);
  EXPECT_EQ(r.pdu.seq, 42u);
  EXPECT_EQ(r.pdu.ack, 41u);
  EXPECT_EQ(r.pdu.window, 16u);
  if (placement == ChecksumPlacement::kTrailer || kind == ChecksumKind::kNone) {
    EXPECT_EQ(r.pdu.aux, 7u);  // header placement sacrifices aux
  }
  EXPECT_EQ(r.pdu.payload.linearize(), iota_bytes(300));
}

TEST_P(PduCodec, DetectsPayloadCorruption) {
  const auto [kind, placement] = GetParam();
  if (kind == ChecksumKind::kNone) GTEST_SKIP() << "no detection configured";
  Pdu p;
  p.type = PduType::kData;
  p.seq = 1;
  p.payload = Message::from_bytes(iota_bytes(200));
  auto wire = encode_pdu(std::move(p), kind, placement);
  auto corrupt = wire.linearize();
  corrupt[kPduHeaderBytes + 50] ^= 0x01;
  auto r = decode_pdu(Message::from_bytes(corrupt));
  EXPECT_EQ(r.status, DecodeStatus::kChecksumMismatch);
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectionModes, PduCodec,
    ::testing::Values(std::pair{ChecksumKind::kNone, ChecksumPlacement::kTrailer},
                      std::pair{ChecksumKind::kInternet16, ChecksumPlacement::kHeader},
                      std::pair{ChecksumKind::kInternet16, ChecksumPlacement::kTrailer},
                      std::pair{ChecksumKind::kCrc32, ChecksumPlacement::kTrailer}));

TEST(PduCodec, RejectsMalformed) {
  EXPECT_EQ(decode_pdu(Message::from_bytes(bytes({1, 2, 3}))).status, DecodeStatus::kMalformed);
  // Bad version byte.
  std::vector<std::uint8_t> junk(kPduHeaderBytes, 0);
  junk[0] = 99;
  EXPECT_EQ(decode_pdu(Message::from_bytes(junk)).status, DecodeStatus::kMalformed);
}

TEST(PduCodec, RejectsLengthMismatch) {
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(50));
  auto wire = encode_pdu(std::move(p), ChecksumKind::kNone, ChecksumPlacement::kTrailer);
  auto trimmed = wire.linearize();
  trimmed.pop_back();
  EXPECT_EQ(decode_pdu(Message::from_bytes(trimmed)).status, DecodeStatus::kMalformed);
}

TEST(PduCodec, EmptyPayloadRoundTrip) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = 10;
  auto wire = encode_pdu(std::move(p), ChecksumKind::kInternet16, ChecksumPlacement::kTrailer);
  auto r = decode_pdu(std::move(wire));
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.pdu.type, PduType::kAck);
  EXPECT_EQ(r.pdu.ack, 10u);
  EXPECT_EQ(r.pdu.payload.size(), 0u);
}

TEST(PduCodec, TrailerPlacementKeepsPayloadZeroCopy) {
  os::BufferPool pool;
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(1000), &pool);
  pool.reset_stats();
  auto wire = encode_pdu(std::move(p), ChecksumKind::kCrc32, ChecksumPlacement::kTrailer);
  // CRC32 streams over segments: no payload copy during encode.
  EXPECT_EQ(pool.stats().copied_bytes, 0u);
  EXPECT_GT(wire.segment_count(), 1u);
}

TEST(PduCodec, HeaderPlacementForcesLinearization) {
  os::BufferPool pool;
  Pdu p;
  p.type = PduType::kData;
  p.payload = Message::from_bytes(iota_bytes(1000), &pool);
  pool.reset_stats();
  auto wire = encode_pdu(std::move(p), ChecksumKind::kInternet16, ChecksumPlacement::kHeader);
  EXPECT_GE(pool.stats().copied_bytes, 1000u);  // the extra pass footnote 2 decries
  EXPECT_EQ(wire.segment_count(), 1u);
}

}  // namespace
}  // namespace adaptive::tko
