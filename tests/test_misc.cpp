// Focused coverage for surfaces the larger suites exercise only
// incidentally: TKO events, the umbrella header, World accessors, session
// control ops, the request/response application pair, and RNG edges.
#include "adaptive/adaptive.hpp"
#include "app/request_response.hpp"

#include <gtest/gtest.h>

namespace adaptive {
namespace {

TEST(TkoEvent, OneShotAndCancel) {
  sim::EventScheduler sched;
  os::TimerFacility timers(sched);
  int fired = 0;
  tko::Event e(timers, [&] { ++fired; });
  e.schedule(sim::SimTime::milliseconds(5));
  EXPECT_TRUE(e.pending());
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.pending());

  e.schedule(sim::SimTime::milliseconds(5));
  e.cancel();
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(timers.timers_scheduled(), 2u);
}

TEST(TkoEvent, PeriodicFiresUntilCancelled) {
  sim::EventScheduler sched;
  os::TimerFacility timers(sched);
  int fired = 0;
  tko::Event e(timers, [&] { ++fired; });
  e.schedule_periodic(sim::SimTime::milliseconds(10));
  sched.run_until(sim::SimTime::milliseconds(55));
  EXPECT_EQ(fired, 5);
  e.cancel();
  sched.run_until(sim::SimTime::milliseconds(200));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.expirations(), 5u);
}

TEST(TkoEvent, RearmReplacesPending) {
  sim::EventScheduler sched;
  os::TimerFacility timers(sched);
  std::vector<sim::SimTime> fires;
  tko::Event e(timers, [&] { fires.push_back(sched.now()); });
  e.schedule(sim::SimTime::milliseconds(10));
  e.schedule(sim::SimTime::milliseconds(30));  // replaces the 10ms arm
  sched.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], sim::SimTime::milliseconds(30));
}

TEST(World, AccessorsAndProtocolGraph) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 3, 5); });
  EXPECT_EQ(world.host_count(), 3u);
  EXPECT_EQ(world.transport_address(1).port, tko::kTransportPort);
  EXPECT_EQ(world.transport_address(1).node, world.node(1));
  auto& graph = world.protocol_graph(0);
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_NE(graph.find("adaptive-transport"), nullptr);
  EXPECT_EQ(graph.below("adaptive-transport"), std::vector<std::string>{"host-if"});
  // The graph-owned transport is the same object World exposes.
  EXPECT_EQ(graph.find("adaptive-transport"), &world.transport(0));
  world.run_until(sim::SimTime::milliseconds(5));
  EXPECT_EQ(world.now(), sim::SimTime::milliseconds(5));
}

TEST(SessionControl, KnownAndUnknownOps) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 6); });
  auto& s = world.transport(0).open({world.transport_address(1)},
                                    tko::sa::udp_compat_config());
  EXPECT_EQ(*s.control("state"), "idle");
  EXPECT_EQ(*s.control("peer"), net::to_string(world.transport_address(1)));
  EXPECT_NE(s.control("local")->find("n"), std::string::npos);
  EXPECT_FALSE(s.control("nonsense").has_value());
  EXPECT_FALSE(s.is_multicast_session());
}

TEST(RequestResponse, TransactionsRoundTripWithMeasuredRtt) {
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 1, 7); });

  app::ResponderApp server;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) { server.attach(s); });

  auto cfg = tko::sa::reliable_bulk_config();
  cfg.connection = tko::sa::ConnectionScheme::kImplicit;
  cfg.segment_bytes = 1024;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);

  app::RequesterApp client(session, world.host(0).timers(), /*rate=*/30.0,
                           /*min=*/128, /*max=*/900, /*seed=*/8,
                           sim::SimTime::seconds(5));
  client.start();
  world.run_for(sim::SimTime::seconds(8));

  const auto& st = client.stats();
  EXPECT_GT(st.requests_sent, 100u);
  EXPECT_EQ(st.responses_received, st.requests_sent);  // reliable: all answered
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(server.requests_served(), st.requests_sent);
  // RTT at least the 60ms propagation round trip, bounded by queueing.
  EXPECT_GT(st.mean_rtt_sec(), 0.06);
  EXPECT_LT(st.mean_rtt_sec(), 0.5);
  EXPECT_GE(st.p95_rtt_sec(), st.mean_rtt_sec());
}

TEST(RequestResponse, OutstandingGrowsWhenServerIsFar) {
  // On a satellite-delay path many requests overlap in flight.
  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 9); });
  world.network().set_link_pair_up(world.topology().scenario_links[0], false);  // satellite

  app::ResponderApp server;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) { server.attach(s); });
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.connection = tko::sa::ConnectionScheme::kImplicit;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);

  app::RequesterApp client(session, world.host(0).timers(), 50.0, 64, 128, 10,
                           sim::SimTime::seconds(4));
  client.start();
  world.run_for(sim::SimTime::seconds(8));
  EXPECT_GT(client.stats().outstanding_peak, 10u);  // ~50/s x 0.5s RTT
  EXPECT_GT(client.stats().mean_rtt_sec(), 0.5);
}

TEST(Rng, UniformIntFullRangeAndSingleton) {
  sim::Rng r(31);
  // Full 64-bit range does not hang or bias-crash.
  (void)r.uniform_int(0, UINT64_MAX);
  EXPECT_EQ(r.uniform_int(7, 7), 7u);
}

TEST(Message, PoolAccessorAndEmpty) {
  os::BufferPool pool;
  tko::Message m(&pool);
  EXPECT_EQ(m.pool(), &pool);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.segment_count(), 0u);
  EXPECT_TRUE(m.linearize().empty());
  auto tail = m.split(0);
  EXPECT_TRUE(tail.empty());
}

TEST(Umbrella, SingleIncludeExposesTheApi) {
  // Compiling this file via adaptive/adaptive.hpp IS the test; spot-check
  // a symbol from each subsystem.
  EXPECT_STREQ(mantts::to_string(mantts::Tsc::kInteractiveIsochronous),
               "interactive-isochronous");
  EXPECT_EQ(tko::sa::SessionConfig::kWireBytes, 40u);
  EXPECT_EQ(unites::classify_metric("throughput.bps"), unites::MetricClass::kBlackbox);
  EXPECT_EQ(app::kTable1AppCount, 9u);
}

TEST(World, HostCollectorsFeedSystemwideView) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 12); });
  world.enable_host_collectors(sim::SimTime::milliseconds(50));
  auto& session = world.transport(0).open({world.transport_address(1)},
                                          tko::sa::reliable_bulk_config());
  world.transport(1).set_acceptor(
      [](tko::TransportSession& s) { s.set_deliver([](tko::Message&&) {}); });
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(20000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  // Both hosts contributed CPU series; the systemwide sum is positive.
  EXPECT_GT(world.repository().systemwide_sum(unites::metrics::kCpuInstructions), 0.0);
  EXPECT_FALSE(world.repository().keys_for_host(world.host(1).node_id()).empty());
}

class AckSchemeOnLossyPath
    : public ::testing::TestWithParam<std::pair<tko::sa::AckScheme, std::uint16_t>> {};

TEST_P(AckSchemeOnLossyPath, SelectiveRepeatCompletesWithEveryAckTiming) {
  const auto [scheme, n] = GetParam();
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 1, 13); });
  std::size_t received = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { received += m.size(); });
  });
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.connection = tko::sa::ConnectionScheme::kImplicit;
  cfg.window_pdus = 8;
  cfg.ack = scheme;
  if (n != 0) cfg.ack_every_n = n;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(60000, 5),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(40));
  EXPECT_EQ(received, 60000u);  // ack timing never breaks correctness
}

INSTANTIATE_TEST_SUITE_P(
    Timings, AckSchemeOnLossyPath,
    ::testing::Values(std::pair{tko::sa::AckScheme::kImmediate, std::uint16_t{0}},
                      std::pair{tko::sa::AckScheme::kDelayed, std::uint16_t{0}},
                      std::pair{tko::sa::AckScheme::kEveryN, std::uint16_t{2}},
                      std::pair{tko::sa::AckScheme::kEveryN, std::uint16_t{4}}));

}  // namespace
}  // namespace adaptive
