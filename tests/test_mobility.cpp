// Session survivability plane (DESIGN §15): Karn path reseeding, straggler
// handling across handovers, anchor priming for mid-stream joiners, the
// stale-ack membership gate, the fault-plan mobility grammar, the
// MobilityController's handover/membership disciplines, and an end-to-end
// scripted handover run judged by the survivability oracle.
#include "adaptive/scenario.hpp"
#include "mantts/policy.hpp"
#include "net/mobility_controller.hpp"
#include "net/topologies.hpp"
#include "sim/fault_plan.hpp"
#include "tko/sa/ack_strategy.hpp"
#include "tko/sa/gbn.hpp"
#include "tko/sa/rtt_estimator.hpp"
#include "tko/sa/selective_repeat.hpp"
#include "tko/sa/sequencing.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace adaptive {
namespace {

using namespace tko;
using namespace tko::sa;

// --- harness ---------------------------------------------------------------

class FakeCore final : public SessionCore {
public:
  FakeCore() : timers_(sched) {}

  void emit(Pdu&& p) override { emitted.push_back(std::move(p)); }
  void deliver(Message&& m) override { delivered.push_back(m.linearize()); }
  os::TimerFacility& timers() override { return timers_; }
  os::BufferPool& buffers() override { return pool_; }
  [[nodiscard]] sim::SimTime now() const override { return sched.now(); }
  [[nodiscard]] std::size_t receiver_count() const override { return receivers; }
  [[nodiscard]] bool is_receiver(net::NodeId node) const override {
    return !departed.contains(node);
  }
  void tx_ready() override { ++tx_ready_calls; }
  void connection_established() override {}
  void connection_closed(bool) override {}
  void loss_signal() override { ++losses; }
  void count(std::string_view metric, double value) override {
    counts[std::string(metric)] += value;
  }

  sim::EventScheduler sched;
  os::TimerFacility timers_;
  os::BufferPool pool_;
  std::vector<Pdu> emitted;
  std::vector<std::vector<std::uint8_t>> delivered;
  std::size_t receivers = 1;
  std::set<net::NodeId> departed;  ///< drives the is_receiver membership gate
  int tx_ready_calls = 0, losses = 0;
  std::map<std::string, double> counts;
};

Message msg(std::initializer_list<int> v) {
  std::vector<std::uint8_t> b;
  for (int x : v) b.push_back(static_cast<std::uint8_t>(x));
  return Message::from_bytes(b);
}

Pdu ack_pdu(std::uint32_t cum, std::uint32_t bitmap = 0) {
  Pdu p;
  p.type = PduType::kAck;
  p.ack = cum;
  p.aux = bitmap;
  return p;
}

Pdu data_pdu(std::uint32_t seq) {
  Pdu p;
  p.type = PduType::kData;
  p.seq = seq;
  p.payload = msg({1, 2, 3});
  return p;
}

// ---------------------------------------------------------------------------
// Karn's rule for path switches (RttEstimator::reseed_path)
// ---------------------------------------------------------------------------

TEST(RttReseed, CarriesEffectiveRtoAndDropsOldPathSamples) {
  RttEstimator rtt;
  for (int i = 0; i < 100; ++i) rtt.sample(sim::SimTime::milliseconds(40));
  const sim::SimTime converged = rtt.rto();
  EXPECT_LT(converged.ms(), 55.0);

  rtt.reseed_path();
  // Every sample described the old path: the smoothed estimate must not
  // survive, but the effective RTO carries over as the new path's
  // conservative initial timeout.
  EXPECT_FALSE(rtt.has_sample());
  EXPECT_EQ(rtt.srtt(), sim::SimTime::zero());
  EXPECT_EQ(rtt.rto(), converged);
}

TEST(RttReseed, BackoffIsFoldedIntoTheCarriedRtoOnce) {
  RttEstimator rtt(sim::SimTime::milliseconds(100));
  rtt.backoff();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(400));

  rtt.reseed_path();
  // The backed-off value became the new base; the shift itself was
  // cleared, so further timeouts back off from 400, not 1600.
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(400));
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), sim::SimTime::milliseconds(800));
}

TEST(RttReseed, FirstNewPathSampleReinitializes) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.sample(sim::SimTime::milliseconds(10));
  rtt.reseed_path();

  // Regression: the RTO must re-converge to the *new* path's delay, not
  // stay pinned at the old path's estimate (a 10ms-trained RTO on a 250ms
  // satellite path would retransmit every PDU spuriously).
  rtt.sample(sim::SimTime::milliseconds(250));
  EXPECT_EQ(rtt.srtt(), sim::SimTime::milliseconds(250));
  EXPECT_GE(rtt.rto(), sim::SimTime::milliseconds(250));
}

TEST(RttReseed, SenderDiscardsOldPathSamplesAfterPathChange) {
  FakeCore core;
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  NoAck ack;
  ack.attach(core);
  PassThrough seq;
  seq.attach(core);
  gbn.wire(&ack, &seq);

  gbn.send_data(msg({1}));
  gbn.send_data(msg({2}));
  gbn.on_path_change();
  EXPECT_EQ(gbn.stats().path_reseeds, 1u);

  // Acks for PDUs launched on the old path arrive after the switch: they
  // must not feed the new path's RTT estimate (the send timestamps were
  // discarded with the path).
  core.sched.run_until(core.sched.now() + sim::SimTime::milliseconds(30));
  gbn.on_ack(ack_pdu(2), 99);
  EXPECT_EQ(gbn.rtt().samples(), 0u);
  EXPECT_TRUE(gbn.all_acked());
}

// ---------------------------------------------------------------------------
// Resequencer stragglers and the sequence-space wrap
// ---------------------------------------------------------------------------

TEST(ResequencerStraggler, BelowHorizonDataIsDroppedAndCounted) {
  FakeCore core;
  Resequencer r;
  r.attach(core);

  r.offer(1, msg({1}));
  r.offer(2, msg({2}));
  EXPECT_EQ(core.delivered.size(), 2u);

  // An old-path straggler below the delivery horizon: already delivered,
  // releasing it again would duplicate and reorder the stream.
  r.offer(1, msg({1}));
  EXPECT_EQ(core.delivered.size(), 2u);
  EXPECT_EQ(r.stragglers_dropped(), 1u);
  EXPECT_EQ(core.counts["sequencing.straggler_dropped"], 1.0);
}

TEST(ResequencerStraggler, GapSkipReleasesHeldDataThenDropsLateFills) {
  FakeCore core;
  Resequencer r;
  r.attach(core);

  r.offer(5, msg({5}));
  r.offer(7, msg({7}));
  EXPECT_EQ(core.delivered.size(), 0u);  // waiting on 1..4 and 6

  // Handover gap-skip: sequences below 8 are declared permanently lost;
  // held data below the new horizon is released in serial order first.
  r.gap_skip(8);
  ASSERT_EQ(core.delivered.size(), 2u);
  EXPECT_EQ(core.delivered[0][0], 5);
  EXPECT_EQ(core.delivered[1][0], 7);

  // The skipped gap finally fills from an old-path straggler: too late.
  r.offer(6, msg({6}));
  EXPECT_EQ(core.delivered.size(), 2u);
  EXPECT_EQ(r.stragglers_dropped(), 1u);

  r.offer(8, msg({8}));
  EXPECT_EQ(core.delivered.size(), 3u);
}

TEST(ResequencerStraggler, SerialOrderSurvivesTheSequenceWrap) {
  // RFC 1982 serial arithmetic: 0xFFFFFFFE < 0xFFFFFFFF < 0 < 1. A raw
  // numeric comparison would treat post-wrap sequences as ancient
  // stragglers and drop live data.
  FakeCore core;
  Resequencer r;
  r.attach(core);
  SequencingState s;
  s.next_deliver = 0xFFFFFFFEu;
  r.restore(std::move(s));

  r.offer(0xFFFFFFFFu, msg({2}));
  r.offer(1, msg({4}));
  EXPECT_EQ(core.delivered.size(), 0u);
  r.offer(0xFFFFFFFEu, msg({1}));
  EXPECT_EQ(core.delivered.size(), 2u);  // ...FE, ...FF drain; 1 waits on 0
  r.offer(0, msg({3}));
  ASSERT_EQ(core.delivered.size(), 4u);
  EXPECT_EQ(core.delivered[0][0], 1);
  EXPECT_EQ(core.delivered[1][0], 2);
  EXPECT_EQ(core.delivered[2][0], 3);
  EXPECT_EQ(core.delivered[3][0], 4);

  // A pre-wrap sequence arriving after the horizon crossed zero is a
  // straggler, not a 4-billion-ahead future packet.
  r.offer(0xFFFFFFF0u, msg({9}));
  EXPECT_EQ(r.stragglers_dropped(), 1u);
  EXPECT_EQ(core.delivered.size(), 4u);
}

TEST(ResequencerStraggler, GapSkipReleaseOrderIsSerialAcrossTheWrap) {
  FakeCore core;
  Resequencer r;
  r.attach(core);
  SequencingState s;
  s.next_deliver = 0xFFFFFFFDu;
  r.restore(std::move(s));

  // Held entries straddle the wrap; the map iterates numerically (0, 1,
  // 0xFFFFFFFE...), so release must re-sort serially.
  r.offer(0, msg({2}));
  r.offer(0xFFFFFFFEu, msg({1}));
  r.offer(1, msg({3}));
  r.gap_skip(3);
  ASSERT_EQ(core.delivered.size(), 3u);
  EXPECT_EQ(core.delivered[0][0], 1);
  EXPECT_EQ(core.delivered[1][0], 2);
  EXPECT_EQ(core.delivered[2][0], 3);
}

// ---------------------------------------------------------------------------
// Membership-churn ack handling: unpinning and the stale-ack gate
// ---------------------------------------------------------------------------

class GbnMulticastTest : public ::testing::Test {
protected:
  void SetUp() override {
    gbn = std::make_unique<GoBackN>(sim::SimTime::milliseconds(100), true);
    gbn->attach(core);
    ack_strategy.attach(core);
    sequencing.attach(core);
    gbn->wire(&ack_strategy, &sequencing);
    core.receivers = 2;
  }

  FakeCore core;
  NoAck ack_strategy;
  PassThrough sequencing;
  std::unique_ptr<GoBackN> gbn;
};

TEST_F(GbnMulticastTest, ForgetReceiverUnpinsTheSendWindow) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  gbn->send_data(msg({3}));
  gbn->on_ack(ack_pdu(3), 7);
  gbn->on_ack(ack_pdu(1), 8);
  EXPECT_EQ(gbn->in_flight(), 2u);  // pinned by the slow receiver

  core.receivers = 1;  // host 8 left the group
  gbn->forget_receiver(8);
  EXPECT_TRUE(gbn->all_acked());
  EXPECT_EQ(gbn->stats().receivers_forgotten, 1u);
}

TEST_F(GbnMulticastTest, LateAckFromALeaverCannotResurrectItsWindowEntry) {
  gbn->send_data(msg({1}));
  gbn->send_data(msg({2}));
  gbn->on_ack(ack_pdu(2), 7);
  gbn->on_ack(ack_pdu(2), 8);
  EXPECT_TRUE(gbn->all_acked());

  core.receivers = 1;
  core.departed.insert(8);
  gbn->forget_receiver(8);

  // Regression: host 8's last ack was still in flight when it left. With
  // try_emplace semantics it would re-seed per_receiver_cum[8]; the leaver
  // never sees another retransmission, so its stale entry would pin
  // effective_cum_ack — and the send window — forever.
  EXPECT_EQ(gbn->on_ack(ack_pdu(1), 8), 0u);
  EXPECT_EQ(gbn->stats().stale_acks_ignored, 1u);
  EXPECT_EQ(core.counts["reliability.stale_ack"], 1.0);

  // Traffic after the churn must fully ack on the survivor's say-so alone.
  gbn->send_data(msg({3}));
  gbn->send_data(msg({4}));
  gbn->on_ack(ack_pdu(4), 7);
  EXPECT_TRUE(gbn->all_acked());
}

TEST(SrMulticast, StaleAckGateAlsoCoversSelectiveRepeat) {
  FakeCore core;
  SelectiveRepeat sr(sim::SimTime::milliseconds(100), true);
  sr.attach(core);
  NoAck ack;
  ack.attach(core);
  PassThrough seq;
  seq.attach(core);
  sr.wire(&ack, &seq);
  core.receivers = 2;

  sr.send_data(msg({1}));
  sr.send_data(msg({2}));
  sr.on_ack(ack_pdu(2), 7);
  sr.on_ack(ack_pdu(2), 8);
  EXPECT_TRUE(sr.all_acked());

  core.receivers = 1;
  core.departed.insert(8);
  sr.forget_receiver(8);
  // SR keeps per-receiver sack bitmaps besides the cumulative entry; a
  // leaver's late sack must not re-create either.
  EXPECT_EQ(sr.on_ack(ack_pdu(1, /*bitmap=*/0b1), 8), 0u);
  EXPECT_EQ(sr.stats().stale_acks_ignored, 1u);

  sr.send_data(msg({3}));
  sr.on_ack(ack_pdu(3), 7);
  EXPECT_TRUE(sr.all_acked());
}

// ---------------------------------------------------------------------------
// Anchor PDUs: priming mid-stream joiners
// ---------------------------------------------------------------------------

TEST(Anchor, PrimesAJoinerPastTheUnseenPrefix) {
  FakeCore core;
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  ImmediateAck ack;
  ack.attach(core);
  Resequencer seq;
  seq.attach(core);
  gbn.wire(&ack, &seq);

  // A mid-stream joiner's first sight of the session is an anchor at the
  // sender's send_base: demanding seq 1 would ack cum=0 forever.
  gbn.on_anchor(50);
  EXPECT_EQ(gbn.stats().anchors_applied, 1u);
  gbn.on_data(data_pdu(50), 5);
  gbn.on_data(data_pdu(51), 5);
  EXPECT_EQ(core.delivered.size(), 2u);
}

TEST(Anchor, RepeatedAndRegressiveAnchorsAreNoOps) {
  FakeCore core;
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);
  ImmediateAck ack;
  ack.attach(core);
  Resequencer seq;
  seq.attach(core);
  gbn.wire(&ack, &seq);

  gbn.on_anchor(50);
  gbn.on_data(data_pdu(50), 5);
  gbn.on_data(data_pdu(51), 5);
  // A retransmitted anchor (the prod path re-anchors on every watchdog
  // kick) must not roll the cumulative point backwards.
  gbn.on_anchor(50);
  gbn.on_data(data_pdu(52), 5);
  EXPECT_EQ(core.delivered.size(), 3u);
  EXPECT_EQ(gbn.stats().duplicates_received, 0u);
}

TEST(Anchor, WildAnchorIsRejected) {
  FakeCore core;
  GoBackN gbn(sim::SimTime::milliseconds(100), true);
  gbn.attach(core);

  gbn.on_data(data_pdu(1), 5);
  const auto wild_before = gbn.stats().wild_seqs_rejected;
  // An anchor far beyond any sane window (corruption or hostility) would
  // silently skip the receiver past gigabytes of stream.
  gbn.on_anchor(0x40000000u);
  EXPECT_EQ(gbn.stats().wild_seqs_rejected, wild_before + 1);
  EXPECT_EQ(gbn.stats().anchors_applied, 0u);
}

// ---------------------------------------------------------------------------
// Fault-plan mobility grammar
// ---------------------------------------------------------------------------

TEST(MobilityPlanParser, HandoverSpecRoundTrips) {
  std::vector<std::string> errors;
  const auto plan =
      sim::parse_fault_plan("handover@2+0.05:node=0,to=1,mode=bbm;join@4:node=3;leave@6:node=3",
                            &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, sim::FaultKind::kHandover);
  EXPECT_EQ(plan.faults[0].to_attachment, 1u);
  EXPECT_FALSE(plan.faults[0].make_before_break);
  EXPECT_EQ(plan.faults[1].kind, sim::FaultKind::kGroupJoin);
  EXPECT_EQ(plan.faults[2].kind, sim::FaultKind::kGroupLeave);
  // describe() emits the same grammar it was parsed from.
  const auto reparsed = sim::parse_fault_plan(plan.describe());
  EXPECT_EQ(reparsed.describe(), plan.describe());
}

TEST(MobilityPlanParser, ModeIsDefaultMbbAndBareModeIsRejected) {
  EXPECT_TRUE(sim::parse_fault_plan("handover@2+0.05:node=0,to=1").faults.at(0).make_before_break);

  std::vector<std::string> errors;
  const auto plan = sim::parse_fault_plan("handover@2+0.05:node=0,to=1,mbb", &errors);
  EXPECT_TRUE(plan.empty());  // `mbb` is not a key=value pair
  ASSERT_EQ(errors.size(), 1u);

  errors.clear();
  EXPECT_TRUE(sim::parse_fault_plan("handover@2+0.05:node=0,to=1,mode=teleport", &errors).empty());
  EXPECT_EQ(errors.size(), 1u);
}

TEST(MobilityPlanParser, OverlappingHandoversOfTheSameHostContradict) {
  std::vector<std::string> errors;
  const auto plan = sim::parse_fault_plan(
      "handover@2+0.5:node=0,to=1;handover@2.3+0.5:node=0,to=2", &errors);
  // A host cannot be mid-flight to two attachments at once; the later
  // spec is rejected so replay does not depend on scheduler tie-breaking.
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].to_attachment, 1u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("contradicts"), std::string::npos);

  // Disjoint windows of the same host, and overlapping windows of
  // *different* hosts, are both legal.
  errors.clear();
  EXPECT_EQ(sim::parse_fault_plan("handover@2+0.1:node=0,to=1;handover@3+0.1:node=0,to=2",
                                  &errors)
                .faults.size(),
            2u);
  EXPECT_EQ(sim::parse_fault_plan("handover@2+0.5:node=0,to=1;handover@2.2+0.5:node=1,to=2",
                                  &errors)
                .faults.size(),
            2u);
  EXPECT_TRUE(errors.empty());
}

TEST(MobilityPlanParser, JoinRacingLeaveAtTheSameInstantContradicts) {
  std::vector<std::string> errors;
  const auto plan = sim::parse_fault_plan("join@3:node=2;leave@3:node=2", &errors);
  ASSERT_EQ(plan.faults.size(), 1u);
  EXPECT_EQ(plan.faults[0].kind, sim::FaultKind::kGroupJoin);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("same instant"), std::string::npos);

  // Sequential membership flips of one host are the normal churn shape.
  errors.clear();
  EXPECT_EQ(sim::parse_fault_plan("leave@3:node=2;join@4:node=2", &errors).faults.size(), 2u);
  EXPECT_TRUE(errors.empty());
}

// ---------------------------------------------------------------------------
// MobilityController against a live mobile WAN
// ---------------------------------------------------------------------------

class MobilityControllerTest : public ::testing::Test {
protected:
  MobilityControllerTest()
      : world([](sim::EventScheduler& s) { return net::make_mobile_wan(s, 3, 2, 7); }),
        ctl(world.network(), world.topology().hosts,
            world.topology().hosts.at(world.topology().mobile_host),
            world.topology().attachments) {}

  [[nodiscard]] bool attachment_up(std::size_t i) {
    return world.network().link(world.topology().attachments.at(i)).is_up();
  }

  World world;
  net::MobilityController ctl;
};

TEST_F(MobilityControllerTest, MakeBeforeBreakOverlapsOldAndNewAttachments) {
  ASSERT_TRUE(attachment_up(0));
  ASSERT_FALSE(attachment_up(1));

  ctl.arm(sim::parse_fault_plan("handover@1+0.5:node=0,to=1,mode=mbb"));
  world.run_for(sim::SimTime::milliseconds(1200));
  EXPECT_TRUE(attachment_up(0));  // transition window: both up
  EXPECT_TRUE(attachment_up(1));
  EXPECT_EQ(ctl.stats().handovers_started, 1u);
  EXPECT_EQ(ctl.stats().handovers_completed, 0u);

  world.run_for(sim::SimTime::milliseconds(500));
  EXPECT_FALSE(attachment_up(0));  // old path died at window end
  EXPECT_TRUE(attachment_up(1));
  EXPECT_EQ(ctl.active_attachment(), 1u);
  EXPECT_EQ(ctl.stats().handovers_completed, 1u);
}

TEST_F(MobilityControllerTest, BreakBeforeMakeGoesDarkForTheWindow) {
  ctl.arm(sim::parse_fault_plan("handover@1+0.5:node=0,to=2,mode=bbm"));
  world.run_for(sim::SimTime::milliseconds(1200));
  EXPECT_FALSE(attachment_up(0));  // dark: the blackout the oracle polices
  EXPECT_FALSE(attachment_up(2));

  world.run_for(sim::SimTime::milliseconds(500));
  EXPECT_TRUE(attachment_up(2));
  EXPECT_EQ(ctl.active_attachment(), 2u);
}

TEST_F(MobilityControllerTest, CollidingAndNoOpHandoversAreSkipped) {
  // The parser rejects contradictory plans, but a directly scripted plan
  // can still collide with an in-flight transition.
  sim::FaultPlan plan = sim::parse_fault_plan("handover@1+0.8:node=0,to=1,mode=mbb");
  sim::FaultSpec collide = plan.faults.at(0);
  collide.at = sim::SimTime::seconds(1.2);
  collide.to_attachment = 2;
  plan.faults.push_back(collide);           // lands mid-transition
  sim::FaultSpec noop = plan.faults.at(0);
  noop.at = sim::SimTime::seconds(3);
  noop.to_attachment = 1;                   // already the active attachment
  plan.faults.push_back(noop);

  ctl.arm(plan);
  world.run_for(sim::SimTime::seconds(4));
  EXPECT_EQ(ctl.stats().handovers_completed, 1u);
  EXPECT_EQ(ctl.stats().handovers_skipped, 2u);
  EXPECT_EQ(ctl.active_attachment(), 1u);
}

TEST_F(MobilityControllerTest, UnresolvableTargetsAreCountedNotFatal) {
  // node=1 is not the mobile host; to=9 is not an attachment.
  ctl.arm(sim::parse_fault_plan("handover@1+0.1:node=1,to=1;handover@2+0.1:node=0,to=9"));
  world.run_for(sim::SimTime::seconds(3));
  EXPECT_EQ(ctl.stats().unresolved_targets, 2u);
  EXPECT_EQ(ctl.stats().handovers_started, 0u);
  EXPECT_EQ(ctl.active_attachment(), 0u);
}

TEST_F(MobilityControllerTest, MembershipChurnFlowsThroughTheGroupAndSkipsNoOps) {
  const net::NodeId group = world.network().create_group();
  const net::NodeId host2 = world.topology().hosts.at(2);
  world.network().join_group(group, host2);
  ctl.set_group(group);

  int events = 0;
  ctl.set_membership_observer([&](net::NodeId, bool) { ++events; });
  // leave(2), then a no-op join of an existing member (host 2 rejoined),
  // then a no-op leave of a non-member.
  ctl.arm(sim::parse_fault_plan("leave@1:node=2;join@2:node=2;join@3:node=2;leave@4:node=3"));
  world.run_for(sim::SimTime::seconds(5));

  EXPECT_EQ(ctl.stats().leaves, 1u);
  EXPECT_EQ(ctl.stats().joins, 1u);
  EXPECT_EQ(events, 2);  // the two no-ops fired nothing
  const auto& members = world.network().group_members(group);
  EXPECT_NE(std::find(members.begin(), members.end(), host2), members.end());
}

TEST_F(MobilityControllerTest, MembershipWithoutAGroupIsUnresolved) {
  ctl.arm(sim::parse_fault_plan("join@1:node=2"));
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_EQ(ctl.stats().unresolved_targets, 1u);
  EXPECT_EQ(ctl.stats().joins, 0u);
}

TEST_F(MobilityControllerTest, ObserversSeeBeginAndEndInOrder) {
  std::vector<std::string> log;
  ctl.set_handover_begin_observer([&](const sim::FaultSpec&) { log.push_back("begin"); });
  ctl.set_handover_observer([&](const sim::FaultSpec&) { log.push_back("end"); });
  ctl.arm(sim::parse_fault_plan("handover@1+0.2:node=0,to=1,mode=mbb"));
  world.run_for(sim::SimTime::seconds(2));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "begin");
  EXPECT_EQ(log[1], "end");
}

// ---------------------------------------------------------------------------
// End-to-end: scripted handovers + churn under the survivability oracle
// ---------------------------------------------------------------------------

TEST(MobilityScenario, ScriptedHandoversSurviveWithBoundedBlackout) {
  World world([](sim::EventScheduler& s) { return net::make_mobile_wan(s, 3, 3, 7); });

  RunOptions opt;
  opt.application = app::Table1App::kRemoteFileService;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::mobility_rules();
  opt.src = 1;  // the correspondent streams to the group
  opt.multicast_members = {0, 2, 3, 4};
  opt.faults = sim::parse_fault_plan(
      "handover@1.5+0.05:node=0,to=1,mode=mbb;handover@3+0.08:node=0,to=2,mode=bbm");
  opt.blackout_bound = sim::SimTime::seconds(2);
  opt.scale = 2.0;
  opt.duration = sim::SimTime::seconds(5);
  opt.drain = sim::SimTime::seconds(8);
  opt.seed = 5;
  opt.collect_metrics = true;

  const auto out = run_scenario(world, opt);

  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  EXPECT_TRUE(out.oracle.checked_blackout);
  ASSERT_TRUE(out.mobility.armed);
  EXPECT_EQ(out.mobility.controller.handovers_completed, 2u);
  // Both transitions landed mid-stream, so both blackouts measured — and
  // the route changes drove MANTTS to resynthesize for the new path.
  EXPECT_EQ(out.mobility.blackouts_sec.size(), 2u);
  EXPECT_LT(out.mobility.blackout_max_sec(), 2.0);
  EXPECT_TRUE(out.mobility.synthesis_current);
  EXPECT_GE(out.reconfigurations, 1u);
  EXPECT_GE(out.mantts.renegotiations, 1u);
}

TEST(MobilityScenario, MembershipChurnNeverCostsFullDurationReceiversData) {
  World world([](sim::EventScheduler& s) { return net::make_mobile_wan(s, 3, 3, 11); });

  RunOptions opt;
  opt.application = app::Table1App::kRemoteFileService;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::mobility_rules();
  opt.src = 1;
  opt.multicast_members = {0, 2, 3, 4};
  opt.faults = sim::parse_fault_plan(
      "leave@1.5:node=2;join@2.5:node=2;handover@2+0.05:node=0,to=1,mode=mbb;leave@3.5:node=3");
  opt.blackout_bound = sim::SimTime::seconds(2);
  opt.scale = 2.0;
  opt.duration = sim::SimTime::seconds(5);
  opt.drain = sim::SimTime::seconds(8);
  opt.seed = 3;
  opt.collect_metrics = true;

  const auto out = run_scenario(world, opt);

  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  ASSERT_TRUE(out.mobility.armed);
  EXPECT_EQ(out.mobility.controller.leaves, 2u);
  EXPECT_EQ(out.mobility.controller.joins, 1u);
  EXPECT_TRUE(out.mobility.synthesis_current);

  // The churn hosts (2 rejoined, 3 left for good) are exempt from the
  // no-loss rule; the mobile host and host 4 are bound by it.
  std::map<std::size_t, bool> full;
  for (const auto& r : out.mobility.receivers) full[r.host] = r.full_duration;
  ASSERT_EQ(full.size(), 4u);
  EXPECT_TRUE(full.at(0));
  EXPECT_FALSE(full.at(2));
  EXPECT_FALSE(full.at(3));
  EXPECT_TRUE(full.at(4));
}

}  // namespace
}  // namespace adaptive
