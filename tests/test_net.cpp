// Unit and integration tests for the network simulator: links, switches,
// routing, multicast, failures, monitoring, and background traffic.
#include "net/background_traffic.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/topologies.hpp"
#include "sim/event_scheduler.hpp"

#include <gtest/gtest.h>

namespace adaptive::net {
namespace {

Packet make_packet(Address src, Address dst, std::size_t bytes) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.payload = tko::Message::filled(bytes, 0xAA);
  return p;
}

class TwoHostFixture : public ::testing::Test {
protected:
  void SetUp() override {
    net = std::make_unique<Network>(sched, 42);
    a = net->add_host("a");
    b = net->add_host("b");
    sw = net->add_switch("sw");
    LinkConfig cfg;
    cfg.bandwidth = sim::Rate::mbps(10);
    cfg.propagation_delay = sim::SimTime::microseconds(10);
    cfg.queue_capacity_packets = 4;
    std::tie(l_a_sw, std::ignore) = net->connect(a, sw, cfg);
    std::tie(l_sw_b, std::ignore) = net->connect(sw, b, cfg);
  }

  sim::EventScheduler sched;
  std::unique_ptr<Network> net;
  NodeId a = 0, b = 0, sw = 0;
  LinkId l_a_sw = 0, l_sw_b = 0;
};

TEST_F(TwoHostFixture, DeliversThroughSwitch) {
  std::vector<Packet> got;
  net->set_host_rx(b, [&](Packet&& p) { got.push_back(std::move(p)); });
  net->inject(make_packet({a, 1}, {b, 2}, 500));
  sched.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst.node, b);
  EXPECT_EQ(got[0].payload.size(), 500u);
  EXPECT_EQ(got[0].hop_count, 1u);  // one switch traversed
}

TEST_F(TwoHostFixture, DeliveryLatencyMatchesLinkMath) {
  sim::SimTime arrival = sim::SimTime::zero();
  net->set_host_rx(b, [&](Packet&&) { arrival = sched.now(); });
  net->inject(make_packet({a, 1}, {b, 2}, 972));  // 972+28 = 1000 wire bytes
  sched.run();
  // Two links: each 800us serialization + 10us propagation, + 2us switch.
  const auto expect = sim::SimTime::microseconds(2 * (800 + 10) + 2);
  EXPECT_EQ(arrival, expect);
}

TEST_F(TwoHostFixture, QueueOverflowDropsAndCounts) {
  int got = 0;
  net->set_host_rx(b, [&](Packet&&) { ++got; });
  // Queue capacity 4 on a->sw; burst 10 back-to-back: 1 in service + 4
  // queued survive.
  for (int i = 0; i < 10; ++i) net->inject(make_packet({a, 1}, {b, 2}, 1000));
  sched.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(net->link(l_a_sw).stats().queue_drops, 5u);
  EXPECT_EQ(net->monitor().total_drops(), 5u);
  EXPECT_EQ(net->monitor().total_deliveries(), 5u);
}

TEST_F(TwoHostFixture, MtuExceededDrops) {
  int got = 0;
  net->set_host_rx(b, [&](Packet&&) { ++got; });
  net->inject(make_packet({a, 1}, {b, 2}, 2000));  // default MTU 1500
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net->link(l_a_sw).stats().mtu_drops, 1u);
}

TEST_F(TwoHostFixture, UnroutableDestinationDropsAtInjection) {
  const NodeId isolated = net->add_host("island");
  net->recompute_routes();
  int got = 0;
  net->set_host_rx(isolated, [&](Packet&&) { ++got; });
  net->inject(make_packet({a, 1}, {isolated, 2}, 100));
  sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_GE(net->monitor().total_drops(), 1u);
}

TEST_F(TwoHostFixture, LinkDownDropsAndRecovers) {
  int got = 0;
  net->set_host_rx(b, [&](Packet&&) { ++got; });
  net->set_link_pair_up(l_sw_b, false);
  net->inject(make_packet({a, 1}, {b, 2}, 100));
  sched.run();
  EXPECT_EQ(got, 0);
  net->set_link_pair_up(l_sw_b, true);
  net->inject(make_packet({a, 1}, {b, 2}, 100));
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Link, BitErrorsCorruptPayload) {
  sim::EventScheduler sched;
  Network net(sched, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  LinkConfig cfg;
  cfg.bit_error_rate = 1e-3;  // every packet essentially guaranteed corrupted
  net.connect(a, b, cfg);
  int corrupted = 0, total = 0;
  net.set_host_rx(b, [&](Packet&& p) {
    ++total;
    if (p.bit_error) ++corrupted;
  });
  for (int i = 0; i < 50; ++i) net.inject(make_packet({a, 1}, {b, 2}, 1000));
  sched.run();
  EXPECT_EQ(total, 50);
  EXPECT_GT(corrupted, 45);
}

TEST(Link, CleanLinkNeverCorrupts) {
  sim::EventScheduler sched;
  Network net(sched, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  LinkConfig cfg;
  cfg.bit_error_rate = 0.0;
  net.connect(a, b, cfg);
  int corrupted = 0;
  net.set_host_rx(b, [&](Packet&& p) { corrupted += p.bit_error ? 1 : 0; });
  for (int i = 0; i < 50; ++i) net.inject(make_packet({a, 1}, {b, 2}, 1000));
  sched.run();
  EXPECT_EQ(corrupted, 0);
}

TEST(Link, GilbertElliottBurstsClusterErrors) {
  sim::EventScheduler sched;
  Network net(sched, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  LinkConfig cfg;
  cfg.bit_error_rate = 0.0;        // clean in the good state
  cfg.p_good_to_bad = 0.02;
  cfg.p_bad_to_good = 0.25;
  cfg.burst_error_rate = 1e-3;     // near-certain corruption while bad
  cfg.queue_capacity_packets = 2500;  // the whole batch must traverse
  net.connect(a, b, cfg);

  std::vector<bool> corrupted;
  net.set_host_rx(b, [&](Packet&& p) { corrupted.push_back(p.bit_error); });
  for (int i = 0; i < 2000; ++i) net.inject(make_packet({a, 1}, {b, 2}, 1000));
  sched.run();

  std::size_t errors = 0, runs = 0;
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    if (corrupted[i]) {
      ++errors;
      if (i == 0 || !corrupted[i - 1]) ++runs;
    }
  }
  ASSERT_GT(errors, 50u);
  // Bursty: mean run length clearly above 1 (independent errors at the
  // same marginal rate would give runs ~= errors).
  const double mean_run = static_cast<double>(errors) / static_cast<double>(runs);
  EXPECT_GT(mean_run, 2.0);
  EXPECT_GT(net.link(0).stats().bad_state_packets, 100u);
}

TEST(Link, BurstModelDisabledByDefault) {
  sim::EventScheduler sched;
  Network net(sched, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.connect(a, b, LinkConfig{});
  int got = 0;
  net.set_host_rx(b, [&](Packet&&) { ++got; });
  for (int i = 0; i < 20; ++i) net.inject(make_packet({a, 1}, {b, 2}, 500));
  sched.run();
  EXPECT_EQ(got, 20);
  EXPECT_EQ(net.link(0).stats().bad_state_packets, 0u);
}

TEST(Link, SerializationQueuesBackToBack) {
  sim::EventScheduler sched;
  Network net(sched, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  LinkConfig cfg;
  cfg.bandwidth = sim::Rate::mbps(8);  // 1000B wire -> 1ms each
  cfg.propagation_delay = sim::SimTime::zero();
  net.connect(a, b, cfg);
  std::vector<sim::SimTime> arrivals;
  net.set_host_rx(b, [&](Packet&&) { arrivals.push_back(sched.now()); });
  for (int i = 0; i < 3; ++i) net.inject(make_packet({a, 1}, {b, 2}, 972));
  sched.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], sim::SimTime::milliseconds(1));
  EXPECT_EQ(arrivals[1], sim::SimTime::milliseconds(2));
  EXPECT_EQ(arrivals[2], sim::SimTime::milliseconds(3));
}

TEST(Routing, ShortestPathPrefersFastLinks) {
  sim::EventScheduler sched;
  Network net(sched, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const NodeId s1 = net.add_switch("s1");
  const NodeId s2 = net.add_switch("s2");
  LinkConfig fast;
  fast.bandwidth = sim::Rate::mbps(100);
  fast.propagation_delay = sim::SimTime::microseconds(10);
  LinkConfig slow;
  slow.bandwidth = sim::Rate::mbps(1);
  slow.propagation_delay = sim::SimTime::milliseconds(5);
  // a - s1 - b (fast) and a - s2 - b (slow)
  net.connect(a, s1, fast);
  net.connect(s1, b, fast);
  net.connect(a, s2, slow);
  net.connect(s2, b, slow);
  const auto path = net.path(a, b);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], s1);
}

TEST(Routing, FailoverToBackupPath) {
  sim::EventScheduler sched;
  auto topo = make_dual_path_wan(sched);
  auto& net = *topo.network;
  const NodeId src = topo.hosts[0], dst = topo.hosts[1];

  auto p1 = net.path(src, dst);
  ASSERT_EQ(p1.size(), 4u);  // src, pop-a, pop-b, dst (terrestrial)
  const auto lat_before = net.path_idle_latency(src, dst, 1000);

  net.set_link_pair_up(topo.scenario_links[0], false);  // kill terrestrial
  auto p2 = net.path(src, dst);
  ASSERT_EQ(p2.size(), 5u);  // via satellite switch
  const auto lat_after = net.path_idle_latency(src, dst, 1000);
  EXPECT_GT(lat_after, lat_before + sim::SimTime::milliseconds(200));

  // And traffic actually flows over the new route.
  int got = 0;
  net.set_host_rx(dst, [&](Packet&&) { ++got; });
  net.inject(make_packet({src, 1}, {dst, 2}, 500));
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Routing, PathMtuIsBottleneckMinimum) {
  sim::EventScheduler sched;
  Network net(sched, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const NodeId s = net.add_switch("s");
  LinkConfig big;
  big.mtu_bytes = 9000;
  LinkConfig small;
  small.mtu_bytes = 576;
  net.connect(a, s, big);
  net.connect(s, b, small);
  EXPECT_EQ(net.path_mtu(a, b), 576u);
  EXPECT_EQ(net.path_mtu(b, a), 576u);
}

TEST(Routing, PathBottleneckBandwidth) {
  sim::EventScheduler sched;
  auto topo = make_congested_wan(sched, 1);
  auto& net = *topo.network;
  const auto r = net.path_bottleneck(topo.hosts[0], topo.hosts[1]);
  EXPECT_DOUBLE_EQ(r.mbits_per_sec(), 1.5);
}

TEST(Multicast, TreeDeliversToAllMembersOnce) {
  sim::EventScheduler sched;
  auto topo = make_multicast_campus(sched, 8);
  auto& net = *topo.network;
  const NodeId g = net.create_group();
  for (std::size_t i = 1; i < topo.hosts.size(); ++i) net.join_group(g, topo.hosts[i]);

  std::map<NodeId, int> got;
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    const NodeId h = topo.hosts[i];
    net.set_host_rx(h, [&got, h](Packet&&) { ++got[h]; });
  }
  Packet p = make_packet({topo.hosts[0], 1}, {g, 2}, 400);
  net.inject(std::move(p));
  sched.run();
  EXPECT_EQ(got.size(), 7u);  // everyone but the sender
  for (const auto& [h, n] : got) {
    EXPECT_EQ(n, 1) << "host " << h;
    EXPECT_NE(h, topo.hosts[0]);
  }
}

TEST(Multicast, SharedTrunkCarriesOneCopy) {
  sim::EventScheduler sched;
  auto topo = make_multicast_campus(sched, 8);
  auto& net = *topo.network;
  const NodeId g = net.create_group();
  // All members hang off remote edge switches; the sender's access path
  // and each trunk should carry exactly one copy.
  for (std::size_t i = 1; i < topo.hosts.size(); ++i) net.join_group(g, topo.hosts[i]);
  net.inject(make_packet({topo.hosts[0], 1}, {g, 2}, 400));
  sched.run();
  std::uint64_t max_tx_on_trunk = 0;
  for (const LinkId l : topo.scenario_links) {
    max_tx_on_trunk = std::max(max_tx_on_trunk, net.link(l).stats().tx_packets);
  }
  EXPECT_EQ(max_tx_on_trunk, 1u);
}

TEST(Multicast, LeaveStopsDelivery) {
  sim::EventScheduler sched;
  auto topo = make_multicast_campus(sched, 4);
  auto& net = *topo.network;
  const NodeId g = net.create_group();
  net.join_group(g, topo.hosts[1]);
  net.join_group(g, topo.hosts[2]);
  std::map<NodeId, int> got;
  for (const NodeId h : topo.hosts) net.set_host_rx(h, [&got, h](Packet&&) { ++got[h]; });

  net.inject(make_packet({topo.hosts[0], 1}, {g, 2}, 100));
  sched.run();
  EXPECT_EQ(got[topo.hosts[1]], 1);
  EXPECT_EQ(got[topo.hosts[2]], 1);

  net.leave_group(g, topo.hosts[1]);
  net.inject(make_packet({topo.hosts[0], 1}, {g, 2}, 100));
  sched.run();
  EXPECT_EQ(got[topo.hosts[1]], 1);  // unchanged
  EXPECT_EQ(got[topo.hosts[2]], 2);
}

TEST(Broadcast, AllHostsGroupReachesEveryHost) {
  sim::EventScheduler sched;
  auto topo = make_multicast_campus(sched, 6);
  auto& net = *topo.network;
  std::map<NodeId, int> got;
  for (const NodeId h : topo.hosts) net.set_host_rx(h, [&got, h](Packet&&) { ++got[h]; });

  Packet p = make_packet({topo.hosts[2], 1}, {net.broadcast_address(), 2}, 100);
  net.inject(std::move(p));
  sched.run();
  // Every host except the sender hears the broadcast exactly once —
  // the "distributed name resolution" service of Section 2.1.
  EXPECT_EQ(got.size(), topo.hosts.size() - 1);
  for (const auto& [h, n] : got) {
    EXPECT_EQ(n, 1) << "host " << h;
    EXPECT_NE(h, topo.hosts[2]);
  }
}

TEST(Broadcast, NewHostsJoinAutomatically) {
  sim::EventScheduler sched;
  Network net(sched, 1);
  const auto a = net.add_host("a");
  const auto sw = net.add_switch("sw");
  LinkConfig cfg;
  net.connect(a, sw, cfg);
  const auto b = net.add_host("b");
  net.connect(b, sw, cfg);
  EXPECT_EQ(net.group_members(net.broadcast_address()).size(), 2u);
  int got = 0;
  net.set_host_rx(b, [&](Packet&&) { ++got; });
  net.inject(make_packet({a, 1}, {net.broadcast_address(), 2}, 64));
  sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Multicast, GroupApiValidation) {
  MulticastGroups groups;
  const NodeId g = groups.create_group();
  EXPECT_TRUE(is_multicast(g));
  EXPECT_TRUE(groups.join(g, 3));
  EXPECT_FALSE(groups.join(g, 3));  // already a member
  EXPECT_TRUE(groups.is_member(g, 3));
  EXPECT_TRUE(groups.leave(g, 3));
  EXPECT_FALSE(groups.leave(g, 3));
  EXPECT_THROW(groups.join(999, 1), std::invalid_argument);
}

TEST(Monitor, RecentLossRateWindowed) {
  NetworkMonitor mon;
  for (int i = 0; i < 8; ++i) mon.record(NetEventKind::kDeliver, sim::SimTime::zero(), "");
  for (int i = 0; i < 2; ++i) mon.record(NetEventKind::kDrop, sim::SimTime::zero(), "");
  EXPECT_NEAR(mon.recent_loss_rate(10), 0.2, 1e-9);
  EXPECT_NEAR(mon.recent_loss_rate(2), 1.0, 1e-9);
}

TEST(Monitor, SubscribersSeeEvents) {
  NetworkMonitor mon;
  int events = 0;
  mon.subscribe([&](const NetEvent&) { ++events; });
  mon.record(NetEventKind::kDrop, sim::SimTime::zero(), "x");
  mon.record(NetEventKind::kLinkDown, sim::SimTime::zero(), "y");
  EXPECT_EQ(events, 2);
}

TEST(BackgroundTraffic, CongestsASharedLink) {
  sim::EventScheduler sched;
  auto topo = make_congested_wan(sched, 2);
  auto& net = *topo.network;
  BackgroundTrafficConfig cfg;
  cfg.src = {topo.hosts[0], 9};
  cfg.dst = {topo.hosts[1], 9};
  cfg.burst_rate = sim::Rate::mbps(5);  // 3x the 1.5 Mbps backbone
  cfg.always_on = true;
  BackgroundTraffic bg(net, cfg, 3);
  bg.start();
  sched.run_until(sim::SimTime::seconds(1.0));
  bg.stop();
  sched.run();
  EXPECT_GT(bg.packets_sent(), 100u);
  EXPECT_GT(net.link(topo.scenario_links[0]).stats().queue_drops, 10u);
}

TEST(BackgroundTraffic, OnOffAlternates) {
  sim::EventScheduler sched;
  auto topo = make_ethernet_lan(sched, 2);
  auto& net = *topo.network;
  BackgroundTrafficConfig cfg;
  cfg.src = {topo.hosts[0], 9};
  cfg.dst = {topo.hosts[1], 9};
  cfg.burst_rate = sim::Rate::mbps(1);
  cfg.mean_burst = sim::SimTime::milliseconds(10);
  cfg.mean_idle = sim::SimTime::milliseconds(10);
  BackgroundTraffic bg(net, cfg, 4);
  bg.start();
  sched.run_until(sim::SimTime::seconds(1.0));
  bg.stop();
  sched.run();
  // ~50% duty cycle of 1 Mbps with 1028B packets => roughly 60 pkts/s.
  EXPECT_GT(bg.packets_sent(), 20u);
  EXPECT_LT(bg.packets_sent(), 120u);
}

TEST(Topologies, PrebuiltShapesAreSane) {
  sim::EventScheduler sched;
  auto lan = make_ethernet_lan(sched, 5);
  EXPECT_EQ(lan.hosts.size(), 5u);
  EXPECT_EQ(lan.switches.size(), 1u);
  EXPECT_FALSE(lan.network->path(lan.hosts[0], lan.hosts[4]).empty());

  auto ring = make_fddi_ring(sched, 4);
  EXPECT_EQ(ring.hosts.size(), 4u);
  EXPECT_FALSE(ring.network->path(ring.hosts[0], ring.hosts[2]).empty());
  EXPECT_EQ(ring.network->path_mtu(ring.hosts[0], ring.hosts[2]), 4500u);

  auto wan = make_atm_wan(sched, 2);
  EXPECT_EQ(wan.hosts.size(), 4u);
  // Access links keep pace with the backbone, so the path bottleneck is
  // the 155 Mbps backbone itself.
  EXPECT_DOUBLE_EQ(wan.network->path_bottleneck(wan.hosts[0], wan.hosts[1]).mbits_per_sec(),
                   155.0);
}

TEST(Topologies, CongestionSignalVisibleOnPath) {
  sim::EventScheduler sched;
  auto topo = make_congested_wan(sched, 1);
  auto& net = *topo.network;
  EXPECT_DOUBLE_EQ(net.path_congestion(topo.hosts[0], topo.hosts[1]), 0.0);
  // Stuff the backbone queue synchronously; utilization must rise.
  for (int i = 0; i < 60; ++i) net.inject(make_packet({topo.hosts[0], 1}, {topo.hosts[1], 2}, 1000));
  EXPECT_GT(net.path_congestion(topo.hosts[0], topo.hosts[1]), 0.5);
  sched.run();
}

}  // namespace
}  // namespace adaptive::net
