// Tests for the OS substrate: buffer pools, the serial CPU model, NIC
// interrupt accounting, and host port demultiplexing.
#include "net/topologies.hpp"
#include "os/buffer_pool.hpp"
#include "os/cpu_model.hpp"
#include "os/host.hpp"

#include <gtest/gtest.h>

namespace adaptive::os {
namespace {

TEST(BufferPool, VariableSizeAllocatesExactly) {
  BufferPool pool(BufferScheme::kVariableSize);
  auto b = pool.allocate(100);
  EXPECT_EQ(b->size(), 100u);
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().allocated_bytes, 100u);
  EXPECT_EQ(pool.stats().wasted_bytes, 0u);
}

TEST(BufferPool, FixedSizeRoundsUpAndTracksWaste) {
  BufferPool pool(BufferScheme::kFixedSize, 2048);
  auto b = pool.allocate(100);
  EXPECT_EQ(b->size(), 2048u);
  EXPECT_EQ(pool.stats().wasted_bytes, 1948u);
  auto c = pool.allocate(2049);
  EXPECT_EQ(c->size(), 4096u);
  auto d = pool.allocate(0);
  EXPECT_EQ(d->size(), 2048u);
}

TEST(BufferPool, CopyAccounting) {
  BufferPool pool;
  pool.record_copy(500);
  pool.record_copy(300);
  EXPECT_EQ(pool.stats().copies, 2u);
  EXPECT_EQ(pool.stats().copied_bytes, 800u);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().copies, 0u);
}

TEST(CpuModel, InstrTimeMatchesMips) {
  sim::EventScheduler sched;
  CpuConfig cfg;
  cfg.mips = 10.0;  // 10e6 instr/sec -> 100ns per instr
  CpuModel cpu(sched, cfg);
  EXPECT_EQ(cpu.instr_time(1000).ns(), 100'000);
}

TEST(CpuModel, SerialExecutionQueuesWork) {
  sim::EventScheduler sched;
  CpuConfig cfg;
  cfg.mips = 1.0;  // 1 instr = 1 us
  CpuModel cpu(sched, cfg);
  std::vector<sim::SimTime> done;
  cpu.run(1000, [&] { done.push_back(sched.now()); });
  cpu.run(1000, [&] { done.push_back(sched.now()); });
  sched.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], sim::SimTime::milliseconds(1));
  EXPECT_EQ(done[1], sim::SimTime::milliseconds(2));  // serialized, not parallel
  EXPECT_EQ(cpu.stats().instructions, 2000u);
  EXPECT_EQ(cpu.stats().busy, sim::SimTime::milliseconds(2));
}

TEST(CpuModel, CountersAndUtilization) {
  sim::EventScheduler sched;
  CpuConfig cfg;
  cfg.mips = 1.0;
  cfg.interrupt_instr = 100;
  cfg.context_switch_instr = 200;
  CpuModel cpu(sched, cfg);
  cpu.run_interrupt(nullptr);
  cpu.run_context_switch(nullptr);
  cpu.run_copy(400, nullptr);  // 0.25 instr/byte -> 100 instr
  sched.run();
  EXPECT_EQ(cpu.stats().interrupts, 1u);
  EXPECT_EQ(cpu.stats().context_switches, 1u);
  EXPECT_EQ(cpu.stats().instructions, 400u);
  // 400 us busy since t=0; run_until to advance the clock then check.
  sched.run_until(sim::SimTime::milliseconds(1));
  EXPECT_NEAR(cpu.utilization_since(sim::SimTime::zero()), 0.4, 1e-9);
}

class HostFixture : public ::testing::Test {
protected:
  void SetUp() override {
    topo = net::make_ethernet_lan(sched, 2);
    ha = std::make_unique<Host>(*topo.network, topo.hosts[0]);
    hb = std::make_unique<Host>(*topo.network, topo.hosts[1]);
  }
  sim::EventScheduler sched;
  net::Topology topo;
  std::unique_ptr<Host> ha, hb;
};

TEST_F(HostFixture, PortDemuxRoutesByDestinationPort) {
  int on5 = 0, on6 = 0;
  hb->bind_port(5, [&](net::Packet&&) { ++on5; });
  hb->bind_port(6, [&](net::Packet&&) { ++on6; });
  net::Packet p;
  p.src = {ha->node_id(), 1};
  p.dst = {hb->node_id(), 5};
  p.payload = tko::Message::filled(64, 1);
  ha->send(std::move(p));
  sched.run();
  EXPECT_EQ(on5, 1);
  EXPECT_EQ(on6, 0);
  EXPECT_EQ(hb->demux_misses(), 0u);
}

TEST_F(HostFixture, UnboundPortCountsMiss) {
  net::Packet p;
  p.src = {ha->node_id(), 1};
  p.dst = {hb->node_id(), 99};
  p.payload = tko::Message::filled(64, 1);
  ha->send(std::move(p));
  sched.run();
  EXPECT_EQ(hb->demux_misses(), 1u);
}

TEST_F(HostFixture, DoubleBindThrows) {
  hb->bind_port(5, [](net::Packet&&) {});
  EXPECT_THROW(hb->bind_port(5, [](net::Packet&&) {}), std::invalid_argument);
  hb->unbind_port(5);
  EXPECT_NO_THROW(hb->bind_port(5, [](net::Packet&&) {}));
}

TEST_F(HostFixture, EphemeralPortsAreFresh) {
  const auto p1 = ha->allocate_port();
  ha->bind_port(p1, [](net::Packet&&) {});
  const auto p2 = ha->allocate_port();
  EXPECT_NE(p1, p2);
}

TEST_F(HostFixture, NicChargesInterruptsBothWays) {
  hb->bind_port(5, [](net::Packet&&) {});
  net::Packet p;
  p.src = {ha->node_id(), 1};
  p.dst = {hb->node_id(), 5};
  p.payload = tko::Message::filled(64, 1);
  ha->send(std::move(p));
  sched.run();
  EXPECT_EQ(ha->cpu().stats().interrupts, 1u);  // tx interrupt
  EXPECT_EQ(hb->cpu().stats().interrupts, 1u);  // rx interrupt
  EXPECT_EQ(ha->nic().tx_packets(), 1u);
  EXPECT_EQ(hb->nic().rx_packets(), 1u);
}

TEST_F(HostFixture, NicFillsSourceNode) {
  net::Packet seen;
  hb->bind_port(5, [&](net::Packet&& p) { seen = std::move(p); });
  net::Packet p;
  p.src = {9999, 1};  // wrong on purpose; NIC must overwrite
  p.dst = {hb->node_id(), 5};
  p.payload = tko::Message::filled(16, 1);
  ha->send(std::move(p));
  sched.run();
  EXPECT_EQ(seen.src.node, ha->node_id());
}

TEST_F(HostFixture, InterruptCoalescingAmortizesInterrupts) {
  // Rebuild host B with a coalescing NIC (4 packets per interrupt).
  hb.reset();
  NicConfig nic;
  nic.interrupt_coalescing = 4;
  nic.coalesce_timeout = sim::SimTime::milliseconds(1);
  hb = std::make_unique<Host>(*topo.network, topo.hosts[1], CpuConfig{}, nic);

  int got = 0;
  hb->bind_port(5, [&](net::Packet&&) { ++got; });
  for (int i = 0; i < 8; ++i) {
    net::Packet p;
    p.src = {ha->node_id(), 1};
    p.dst = {hb->node_id(), 5};
    p.payload = tko::Message::filled(64, 1);
    ha->send(std::move(p));
  }
  sched.run();
  EXPECT_EQ(got, 8);
  // Eight arrivals, four per interrupt: two rx interrupts (vs eight).
  EXPECT_EQ(hb->cpu().stats().interrupts, 2u);
}

TEST_F(HostFixture, CoalescingTimeoutFlushesPartialBatch) {
  hb.reset();
  NicConfig nic;
  nic.interrupt_coalescing = 16;
  nic.coalesce_timeout = sim::SimTime::microseconds(200);
  hb = std::make_unique<Host>(*topo.network, topo.hosts[1], CpuConfig{}, nic);
  int got = 0;
  hb->bind_port(5, [&](net::Packet&&) { ++got; });
  net::Packet p;
  p.src = {ha->node_id(), 1};
  p.dst = {hb->node_id(), 5};
  p.payload = tko::Message::filled(64, 1);
  ha->send(std::move(p));
  sched.run();
  EXPECT_EQ(got, 1);  // the lone packet was not stranded
  EXPECT_EQ(hb->cpu().stats().interrupts, 1u);
}

TEST_F(HostFixture, TxCoalescingPreservesOrder) {
  ha.reset();
  NicConfig nic;
  nic.interrupt_coalescing = 4;
  ha = std::make_unique<Host>(*topo.network, topo.hosts[0], CpuConfig{}, nic);
  std::vector<std::uint8_t> order;
  hb->bind_port(5, [&](net::Packet&& p) { order.push_back(p.payload.peek(1)[0]); });
  for (std::uint8_t i = 0; i < 8; ++i) {
    net::Packet p;
    p.src = {ha->node_id(), 1};
    p.dst = {hb->node_id(), 5};
    p.payload = tko::Message::filled(64, i);
    ha->send(std::move(p));
  }
  sched.run();
  ASSERT_EQ(order.size(), 8u);
  for (std::uint8_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(ha->cpu().stats().interrupts, 2u);  // two tx batches
}

}  // namespace
}  // namespace adaptive::os
