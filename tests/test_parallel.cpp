// The sharded scenario engine's headline invariant, test-enforced: for any
// seed set, a parallel sweep's merged UNITES repository and trace stream
// are byte-identical to the serial run's — metric by metric, histogram
// bucket by histogram bucket, trace event by trace event. Plus the
// shared-state regression tests for the global state that had to be
// eliminated to get there (process-global TraceRecorder, racy Logger
// statics), and the ShardRunner/Rng::fork(stream) building blocks.
#include "adaptive/sweep.hpp"
#include "sim/logging.hpp"
#include "sim/shard_runner.hpp"
#include "unites/export.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

SweepConfig sweep_config(std::vector<std::uint64_t> seeds, std::size_t jobs) {
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); };
  };
  sc.base.application = app::Table1App::kFileTransfer;
  sc.base.mode = RunOptions::Mode::kManntts;
  sc.base.duration = sim::SimTime::seconds(1);
  sc.base.drain = sim::SimTime::seconds(1);
  sc.base.scale = 0.3;
  sc.base.collect_metrics = true;
  sc.seeds = std::move(seeds);
  sc.jobs = jobs;
  sc.capture_trace = true;
  return sc;
}

std::vector<std::uint64_t> seed_range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; ++s) out.push_back(s);
  return out;
}

// Metric-by-metric, sample-by-sample, bucket-by-bucket equality.
void expect_repositories_identical(const unites::MetricRepository& a,
                                   const unites::MetricRepository& b) {
  EXPECT_EQ(a.total_samples(), b.total_samples());
  const auto keys_a = a.keys();
  const auto keys_b = b.keys();
  ASSERT_EQ(keys_a.size(), keys_b.size());
  for (std::size_t i = 0; i < keys_a.size(); ++i) EXPECT_EQ(keys_a[i], keys_b[i]);

  for (const auto& key : keys_a) {
    SCOPED_TRACE("metric " + key.name + " host " + std::to_string(key.host) + " conn " +
                 std::to_string(key.connection));
    const auto sa = a.summary(key);
    const auto sb = b.summary(key);
    ASSERT_TRUE(sa.has_value());
    ASSERT_TRUE(sb.has_value());
    EXPECT_EQ(sa->count, sb->count);
    EXPECT_EQ(sa->sum, sb->sum);  // exact: identical op sequence, not just close
    EXPECT_EQ(sa->min, sb->min);
    EXPECT_EQ(sa->max, sb->max);
    EXPECT_EQ(sa->last, sb->last);

    const unites::Series* ser_a = a.series(key);
    const unites::Series* ser_b = b.series(key);
    ASSERT_NE(ser_a, nullptr);
    ASSERT_NE(ser_b, nullptr);
    ASSERT_EQ(ser_a->size(), ser_b->size());
    for (std::size_t i = 0; i < ser_a->size(); ++i) {
      EXPECT_EQ((*ser_a)[i].when, (*ser_b)[i].when);
      EXPECT_EQ((*ser_a)[i].value, (*ser_b)[i].value);
    }

    const unites::Histogram* ha = a.histogram(key);
    const unites::Histogram* hb = b.histogram(key);
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->count(), hb->count());
    EXPECT_EQ(ha->sum(), hb->sum());
    const auto buckets_a = ha->nonzero_buckets();
    const auto buckets_b = hb->nonzero_buckets();
    ASSERT_EQ(buckets_a.size(), buckets_b.size());
    for (std::size_t i = 0; i < buckets_a.size(); ++i) {
      EXPECT_EQ(buckets_a[i].lower, buckets_b[i].lower);
      EXPECT_EQ(buckets_a[i].upper, buckets_b[i].upper);
      EXPECT_EQ(buckets_a[i].count, buckets_b[i].count);
    }
  }

  // The exported form must match byte for byte too (what tooling reads).
  std::ostringstream jsonl_a, jsonl_b;
  unites::write_metrics_jsonl(jsonl_a, a);
  unites::write_metrics_jsonl(jsonl_b, b);
  EXPECT_EQ(jsonl_a.str(), jsonl_b.str());
}

void expect_traces_identical(const std::vector<unites::TraceEvent>& a,
                             const std::vector<unites::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when) << "event " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << "event " << i;
    EXPECT_STREQ(a[i].name, b[i].name) << "event " << i;
    EXPECT_EQ(a[i].category, b[i].category) << "event " << i;
    EXPECT_EQ(a[i].node, b[i].node) << "event " << i;
    EXPECT_EQ(a[i].session, b[i].session) << "event " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "event " << i;
  }
  EXPECT_EQ(trace_digest(a), trace_digest(b));
}

void expect_outcomes_identical(const std::vector<SweepRunSummary>& a,
                               const std::vector<SweepRunSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].qos_pass, b[i].qos_pass);
    EXPECT_EQ(a[i].throughput_bps, b[i].throughput_bps);
    EXPECT_EQ(a[i].mean_latency_ns, b[i].mean_latency_ns);
    EXPECT_EQ(a[i].loss_fraction, b[i].loss_fraction);
    EXPECT_EQ(a[i].units_received, b[i].units_received);
    EXPECT_EQ(a[i].reconfigurations, b[i].reconfigurations);
    EXPECT_EQ(a[i].time_in_contract, b[i].time_in_contract);
    EXPECT_EQ(a[i].qos_windows, b[i].qos_windows);
    EXPECT_EQ(a[i].qos_windows_bad, b[i].qos_windows_bad);
    EXPECT_EQ(a[i].qos_breaches, b[i].qos_breaches);
    EXPECT_EQ(a[i].qos_budget_consumed, b[i].qos_budget_consumed);
    EXPECT_EQ(a[i].qoe, b[i].qoe);
    EXPECT_EQ(a[i].first_breach_ns, b[i].first_breach_ns);
  }
}

// ---------------------------------------------------------------------------
// The headline property: serial == parallel, byte for byte
// ---------------------------------------------------------------------------

class ParallelJobs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelJobs, SixtyFourSeedSweepIsByteIdenticalToSerial) {
  const auto seeds = seed_range(1, 64);
  const SweepResult serial = run_sweep(sweep_config(seeds, 1));
  const SweepResult parallel = run_sweep(sweep_config(seeds, GetParam()));

  ASSERT_EQ(serial.runs.size(), 64u);
  expect_outcomes_identical(serial.runs, parallel.runs);
  expect_repositories_identical(serial.merged, parallel.merged);
  expect_traces_identical(serial.trace, parallel.trace);
  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  EXPECT_EQ(serial.trace_events_emitted, parallel.trace_events_emitted);
  EXPECT_GT(serial.trace.size(), 0u);
  EXPECT_GT(serial.merged.total_samples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Jobs248, ParallelJobs, ::testing::Values(2u, 4u, 8u));

TEST(ParallelSweep, ShardBoundarySeedCountNotDivisibleByJobs) {
  // 7 seeds over 4 jobs (ragged split) and over 8 jobs (more workers than
  // work): both must match serial exactly.
  const auto seeds = seed_range(10, 16);
  const SweepResult serial = run_sweep(sweep_config(seeds, 1));
  for (const std::size_t jobs : {4u, 8u}) {
    const SweepResult parallel = run_sweep(sweep_config(seeds, jobs));
    expect_outcomes_identical(serial.runs, parallel.runs);
    expect_repositories_identical(serial.merged, parallel.merged);
    expect_traces_identical(serial.trace, parallel.trace);
  }
}

TEST(ParallelSweep, ZeroScenarioSweepIsEmpty) {
  SweepConfig sc = sweep_config({}, 4);
  sc.count = 0;
  const SweepResult res = run_sweep(sc);
  EXPECT_TRUE(res.runs.empty());
  EXPECT_TRUE(res.trace.empty());
  EXPECT_EQ(res.merged.total_samples(), 0u);
  EXPECT_EQ(res.merged.series_count(), 0u);
  EXPECT_EQ(res.trace_digest, trace_digest({}));
}

TEST(ParallelSweep, SingleScenarioSweepMatchesSerial) {
  const SweepResult serial = run_sweep(sweep_config({42}, 1));
  const SweepResult parallel = run_sweep(sweep_config({42}, 8));
  ASSERT_EQ(serial.runs.size(), 1u);
  expect_outcomes_identical(serial.runs, parallel.runs);
  expect_repositories_identical(serial.merged, parallel.merged);
  expect_traces_identical(serial.trace, parallel.trace);
}

TEST(ParallelSweep, DerivedSeedsAreAPureFunctionOfBaseSeedAndIndex) {
  SweepConfig sc = sweep_config({}, 2);
  sc.base.duration = sim::SimTime::milliseconds(200);
  sc.base.drain = sim::SimTime::milliseconds(200);
  sc.count = 5;
  sc.base_seed = 99;
  const SweepResult a = run_sweep(sc);
  sc.jobs = 1;
  const SweepResult b = run_sweep(sc);
  ASSERT_EQ(a.runs.size(), 5u);
  std::set<std::uint64_t> distinct;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.runs[i].seed, b.runs[i].seed);
    // Must match the documented derivation exactly.
    EXPECT_EQ(a.runs[i].seed, sim::Rng(99).fork(i).next_u64());
    distinct.insert(a.runs[i].seed);
  }
  EXPECT_EQ(distinct.size(), 5u);
}

// ---------------------------------------------------------------------------
// Building block: ShardRunner
// ---------------------------------------------------------------------------

TEST(ShardRunner, RunsEveryItemExactlyOnceOnPoolThreads) {
  const std::size_t n = 257;  // deliberately not a multiple of jobs
  std::vector<std::atomic<int>> hits(n);
  std::set<std::thread::id> threads_seen;
  std::mutex mu;
  sim::ShardRunner runner(8);
  runner.run(n, [&](std::size_t i) {
    hits[i].fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    threads_seen.insert(std::this_thread::get_id());
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // With jobs > 1 every item runs on a pool worker, never the caller.
  // (How many workers get a slice is the OS scheduler's business — on a
  // single-core host one worker may legitimately drain the whole queue.)
  EXPECT_EQ(threads_seen.count(std::this_thread::get_id()), 0u);
  EXPECT_GE(threads_seen.size(), 1u);
}

TEST(ShardRunner, JobsOneRunsInlineInOrder) {
  std::vector<std::size_t> order;
  sim::ShardRunner runner(1);
  const auto caller = std::this_thread::get_id();
  runner.run(5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ShardRunner, FirstExceptionPropagatesAfterJoin) {
  sim::ShardRunner runner(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      runner.run(32,
                 [&](std::size_t i) {
                   if (i == 7) throw std::runtime_error("shard 7 exploded");
                   completed.fetch_add(1);
                 }),
      std::runtime_error);
  // The pool drained the remaining items rather than deadlocking.
  EXPECT_EQ(completed.load(), 31);
}

TEST(ShardRunner, PerItemRngStreamsAreKeyedByItemNotThread) {
  // Record the first draw of every item's stream at jobs=1 and jobs=8;
  // dynamic claiming means different threads own an item across runs, but
  // the stream must not care.
  const std::uint64_t base_seed = 1234;
  std::vector<std::uint64_t> serial(64), parallel(64);
  sim::ShardRunner one(1), eight(8);
  one.run(64, base_seed, [&](std::size_t i, sim::Rng& rng) { serial[i] = rng.next_u64(); });
  eight.run(64, base_seed, [&](std::size_t i, sim::Rng& rng) { parallel[i] = rng.next_u64(); });
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(std::set<std::uint64_t>(serial.begin(), serial.end()).size(), 64u);
}

TEST(Rng, ForkByStreamIsConstAndOrderIndependent) {
  const sim::Rng base(7);
  sim::Rng a = base.fork(3);
  sim::Rng b = base.fork(0);
  sim::Rng c = base.fork(3);  // same stream asked for again, other forks between
  EXPECT_EQ(a.next_u64(), c.next_u64());
  EXPECT_NE(a.next_u64(), b.next_u64());

  // const derivation: forking never perturbs the parent's own sequence.
  sim::Rng x(7), y(7);
  (void)x.fork(123);
  (void)x.fork(456);
  EXPECT_EQ(x.next_u64(), y.next_u64());
}

// ---------------------------------------------------------------------------
// Shared-state regressions: the global state the engine had to eliminate
// ---------------------------------------------------------------------------

// Pre-fix, TraceRecorder::global() was one process-wide ring: two worlds
// tracing on two threads interleaved into a single buffer and the merge
// could never be shard-order independent. Now every shard installs its own
// recorder and sees exactly its own events.
TEST(SharedStateRegression, TraceRecordersAreShardIsolatedAcrossThreads) {
  constexpr int kPerThread = 5000;
  auto worker = [](std::uint32_t session, std::vector<unites::TraceEvent>* out) {
    unites::TraceRecorder recorder;
    recorder.enable();
    unites::ScopedTraceRecorder scoped(recorder);
    for (int i = 0; i < kPerThread; ++i) {
      unites::trace().instant(unites::TraceCategory::kSim, "isolation.test",
                              sim::SimTime::nanoseconds(i), 0, session,
                              static_cast<double>(i));
    }
    *out = recorder.snapshot();
  };
  std::vector<unites::TraceEvent> a, b;
  std::thread ta(worker, 1u, &a);
  std::thread tb(worker, 2u, &b);
  ta.join();
  tb.join();

  ASSERT_EQ(a.size(), static_cast<std::size_t>(kPerThread));
  ASSERT_EQ(b.size(), static_cast<std::size_t>(kPerThread));
  for (int i = 0; i < kPerThread; ++i) {
    EXPECT_EQ(a[i].session, 1u);
    EXPECT_EQ(b[i].session, 2u);
    EXPECT_EQ(a[i].value, static_cast<double>(i));  // in-order, nothing foreign
    EXPECT_EQ(b[i].value, static_cast<double>(i));
  }
}

TEST(SharedStateRegression, ScopedTraceRecorderRestoresThePreviousRecorder) {
  unites::TraceRecorder outer;
  outer.enable();
  unites::ScopedTraceRecorder outer_scope(outer);
  unites::trace().instant(unites::TraceCategory::kSim, "outer", sim::SimTime::zero());
  {
    unites::TraceRecorder inner;
    inner.enable();
    unites::ScopedTraceRecorder inner_scope(inner);
    unites::trace().instant(unites::TraceCategory::kSim, "inner", sim::SimTime::zero());
    EXPECT_EQ(inner.size(), 1u);
  }
  unites::trace().instant(unites::TraceCategory::kSim, "outer-again", sim::SimTime::zero());
  EXPECT_EQ(outer.size(), 2u);  // inner event did not leak here
}

TEST(SharedStateRegression, ThreadDefaultRecorderDoesNotLeakAcrossThreads) {
  // Enabling tracing on a worker thread's default recorder must not flip
  // the main thread's recorder on (pre-fix they were the same object).
  ASSERT_FALSE(unites::trace().enabled());
  std::thread([] {
    unites::trace().enable();
    unites::trace().instant(unites::TraceCategory::kSim, "worker-only", sim::SimTime::zero());
    EXPECT_EQ(unites::trace().size(), 1u);
  }).join();
  EXPECT_FALSE(unites::trace().enabled());
  EXPECT_EQ(unites::trace().size(), 0u);
}

// Pre-fix, Logger had a single process sink: a shard capturing its debug
// stream captured every other shard's lines too.
TEST(SharedStateRegression, LoggerThreadSinksCaptureOnlyTheirOwnShard) {
  sim::Logger::set_level(sim::LogLevel::kInfo);
  auto worker = [](const std::string& tag, int count, std::vector<std::string>* out) {
    sim::ScopedLogSink sink([out](const std::string& line) { out->push_back(line); });
    for (int i = 0; i < count; ++i) {
      sim::Logger::log(sim::LogLevel::kInfo, sim::SimTime::nanoseconds(i), tag,
                       std::to_string(i));
    }
  };
  std::vector<std::string> a, b;
  std::thread ta(worker, "shard-a", 2000, &a);
  std::thread tb(worker, "shard-b", 3000, &b);
  ta.join();
  tb.join();
  sim::Logger::set_level(sim::LogLevel::kOff);

  ASSERT_EQ(a.size(), 2000u);
  ASSERT_EQ(b.size(), 3000u);
  for (const auto& line : a) EXPECT_NE(line.find("shard-a"), std::string::npos) << line;
  for (const auto& line : b) EXPECT_NE(line.find("shard-b"), std::string::npos) << line;
}

TEST(SharedStateRegression, ScopedLogSinkRestoresPreviousThreadSink) {
  std::vector<std::string> outer_lines;
  sim::Logger::set_level(sim::LogLevel::kInfo);
  {
    sim::ScopedLogSink outer([&](const std::string& line) { outer_lines.push_back(line); });
    {
      std::vector<std::string> inner_lines;
      sim::ScopedLogSink inner([&](const std::string& line) { inner_lines.push_back(line); });
      sim::Logger::log(sim::LogLevel::kInfo, sim::SimTime::zero(), "t", "inner");
      EXPECT_EQ(inner_lines.size(), 1u);
    }
    sim::Logger::log(sim::LogLevel::kInfo, sim::SimTime::zero(), "t", "outer");
  }
  sim::Logger::set_level(sim::LogLevel::kOff);
  ASSERT_EQ(outer_lines.size(), 1u);
  EXPECT_NE(outer_lines[0].find("outer"), std::string::npos);
}

// Concurrent logging through the *process* sink must serialize, not race
// (pre-fix: unsynchronized static std::function, a TSan data race).
TEST(SharedStateRegression, ProcessSinkIsSafeUnderConcurrentLogging) {
  std::vector<std::string> lines;
  std::mutex mu;  // set_sink callbacks run under the logger's own lock, but
                  // collect defensively anyway
  sim::Logger::set_sink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  sim::Logger::set_level(sim::LogLevel::kInfo);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        sim::Logger::log(sim::LogLevel::kInfo, sim::SimTime::zero(),
                         "thread-" + std::to_string(t), std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  sim::Logger::set_level(sim::LogLevel::kOff);
  sim::Logger::set_sink(nullptr);
  EXPECT_EQ(lines.size(), 2000u);
}

// Audit guard: BufferPool stats are per-host instance state; two worlds
// running scenarios on two threads must not bleed copy accounting into
// each other (that would also break the byte-identical merge above).
TEST(SharedStateRegression, BufferPoolAccountingStaysPerWorld) {
  auto run_one = [](std::uint64_t seed, std::uint64_t* copies) {
    World world([seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); });
    RunOptions opt;
    opt.application = app::Table1App::kFileTransfer;
    opt.duration = sim::SimTime::milliseconds(500);
    opt.drain = sim::SimTime::milliseconds(500);
    opt.scale = 0.3;
    opt.seed = seed;
    (void)run_scenario(world, opt);
    // Allocation counters, not copy counters: the zero-copy datapath can
    // legitimately finish a sender-side run with zero recorded copies, but
    // every run allocates segments.
    *copies = world.host(0).buffers().stats().allocated_bytes;
  };
  std::uint64_t alone = 0;
  run_one(5, &alone);

  std::uint64_t with_neighbor = 0, neighbor = 0;
  std::thread ta(run_one, 5, &with_neighbor);
  std::thread tb(run_one, 6, &neighbor);
  ta.join();
  tb.join();
  EXPECT_GT(alone, 0u);
  EXPECT_EQ(alone, with_neighbor);  // the neighbor world changed nothing
}

}  // namespace
}  // namespace adaptive
