// Property-based and parameterized sweeps.
//
//  * ConfigMatrix: every representative mechanism combination transfers
//    data correctly end to end (completeness for reliable schemes, no
//    duplicates, ordering where configured) — on a clean LAN and on a
//    lossy WAN.
//  * SegueMatrix: every recovery-scheme transition applied mid-transfer
//    preserves the no-data-loss guarantee (for reliable pairs) and never
//    duplicates or reorders.
//  * Message model checking: random operation sequences against a plain
//    byte-vector reference model.
//  * Routing invariants on random topologies.
#include "adaptive/world.hpp"
#include "net/topologies.hpp"
#include "tko/message.hpp"
#include "tko/sa/synthesizer.hpp"
#include "tko/sa/templates.hpp"
#include "tko/transport.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace adaptive {
namespace {

using tko::sa::AckScheme;
using tko::sa::ConnectionScheme;
using tko::sa::DetectionScheme;
using tko::sa::RecoveryScheme;
using tko::sa::SessionConfig;
using tko::sa::TransmissionScheme;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 13 + salt);
  return out;
}

// ---------------------------------------------------------------------------
// ConfigMatrix
// ---------------------------------------------------------------------------

struct ConfigCase {
  ConnectionScheme connection;
  RecoveryScheme recovery;
  DetectionScheme detection;
  bool ordered;
  bool lossy_network;
};

std::string case_name(const ::testing::TestParamInfo<ConfigCase>& info) {
  const auto& c = info.param;
  std::string s = tko::sa::to_string(c.connection);
  s += "_";
  s += tko::sa::to_string(c.recovery);
  s += "_";
  s += tko::sa::to_string(c.detection);
  s += c.ordered ? "_ordered" : "_unordered";
  s += c.lossy_network ? "_lossy" : "_clean";
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

SessionConfig make_case_config(const ConfigCase& c) {
  SessionConfig cfg;
  cfg.connection = c.connection;
  cfg.recovery = c.recovery;
  cfg.detection = c.detection;
  cfg.ordered_delivery = c.ordered;
  cfg.segment_bytes = 700;
  cfg.rto_initial = sim::SimTime::milliseconds(200);
  switch (c.recovery) {
    case RecoveryScheme::kNone:
      cfg.transmission = TransmissionScheme::kRateControl;
      cfg.inter_pdu_gap = sim::SimTime::microseconds(800);
      cfg.ack = AckScheme::kEveryN;
      cfg.ack_every_n = 8;
      break;
    case RecoveryScheme::kGoBackN:
      cfg.transmission = TransmissionScheme::kSlidingWindow;
      cfg.window_pdus = 12;
      cfg.ack = AckScheme::kImmediate;
      break;
    case RecoveryScheme::kSelectiveRepeat:
      cfg.transmission = TransmissionScheme::kSlidingWindow;
      cfg.window_pdus = 12;
      cfg.ack = AckScheme::kEveryN;
      cfg.ack_every_n = 2;
      break;
    case RecoveryScheme::kForwardErrorCorrection:
      cfg.transmission = TransmissionScheme::kRateControl;
      cfg.inter_pdu_gap = sim::SimTime::microseconds(800);
      cfg.fec_group_size = 4;
      cfg.ack = AckScheme::kNone;
      break;
  }
  // Retransmission without detection cannot work on an errored path; the
  // validator rejects it, so the matrix never produces that pairing.
  return cfg;
}

class ConfigMatrix : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ConfigMatrix, TransfersCorrectly) {
  const ConfigCase& c = GetParam();
  const SessionConfig cfg = make_case_config(c);
  ASSERT_TRUE(tko::sa::Synthesizer::validate(cfg).empty());

  World world([&](sim::EventScheduler& s) {
    return c.lossy_network ? net::make_congested_wan(s, 1, 500)
                           : net::make_ethernet_lan(s, 2, 500);
  });

  std::vector<std::vector<std::uint8_t>> received;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { received.push_back(m.linearize()); });
  });

  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  constexpr int kUnits = 40;
  for (int i = 0; i < kUnits; ++i) {
    session.send(tko::Message::from_bytes(pattern(700, static_cast<std::uint8_t>(i)),
                                          &world.host(0).buffers()));
  }
  session.close(/*graceful=*/true);
  world.run_for(sim::SimTime::seconds(c.lossy_network ? 60 : 10));

  const bool reliable = c.recovery == RecoveryScheme::kGoBackN ||
                        c.recovery == RecoveryScheme::kSelectiveRepeat;
  if (reliable) {
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kUnits));
    EXPECT_EQ(session.state(), tko::SessionState::kClosed);
  } else if (!c.lossy_network) {
    // Clean LAN: even unreliable schemes deliver everything.
    EXPECT_EQ(received.size(), static_cast<std::size_t>(kUnits));
  } else {
    EXPECT_GT(received.size(), static_cast<std::size_t>(kUnits) / 2);
    EXPECT_LE(received.size(), static_cast<std::size_t>(kUnits));
  }
  // No duplicates ever (filter_duplicates defaults on).
  std::set<std::vector<std::uint8_t>> unique(received.begin(), received.end());
  EXPECT_EQ(unique.size(), received.size());
  // Ordered delivery: payload salts must be non-decreasing.
  if (c.ordered && reliable) {
    // pattern(700, salt)[0] == salt, and units were sent with salts
    // 0, 1, 2, ...: ordered delivery means byte 0 increments each unit.
    for (std::size_t i = 1; i < received.size(); ++i) {
      EXPECT_EQ(received[i][0], static_cast<std::uint8_t>(received[i - 1][0] + 1))
          << "out of order at " << i;
    }
  }
}

std::vector<ConfigCase> all_config_cases() {
  std::vector<ConfigCase> cases;
  for (const auto conn : {ConnectionScheme::kImplicit, ConnectionScheme::kExplicit2Way,
                          ConnectionScheme::kExplicit3Way}) {
    for (const auto rec :
         {RecoveryScheme::kNone, RecoveryScheme::kGoBackN, RecoveryScheme::kSelectiveRepeat,
          RecoveryScheme::kForwardErrorCorrection}) {
      for (const auto det : {DetectionScheme::kInternet16Header,
                             DetectionScheme::kInternet16Trailer,
                             DetectionScheme::kCrc32Trailer}) {
        for (const bool ordered : {false, true}) {
          for (const bool lossy : {false, true}) {
            cases.push_back({conn, rec, det, ordered, lossy});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMechanismCombinations, ConfigMatrix,
                         ::testing::ValuesIn(all_config_cases()), case_name);

// ---------------------------------------------------------------------------
// SegueMatrix
// ---------------------------------------------------------------------------

struct SeguePair {
  RecoveryScheme from;
  RecoveryScheme to;
};

std::string segue_name(const ::testing::TestParamInfo<SeguePair>& info) {
  std::string s = std::string(tko::sa::to_string(info.param.from)) + "_to_" +
                  tko::sa::to_string(info.param.to);
  for (auto& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class SegueMatrix : public ::testing::TestWithParam<SeguePair> {};

TEST_P(SegueMatrix, MidTransferSwitchPreservesData) {
  const auto [from, to] = GetParam();
  SessionConfig cfg;
  cfg.connection = ConnectionScheme::kImplicit;
  cfg.transmission = TransmissionScheme::kSlidingWindow;
  cfg.window_pdus = 8;
  cfg.recovery = from;
  cfg.detection = DetectionScheme::kCrc32Trailer;
  cfg.ack = from == RecoveryScheme::kForwardErrorCorrection ? AckScheme::kEveryN
                                                            : AckScheme::kImmediate;
  cfg.ack_every_n = 4;
  cfg.ordered_delivery = true;
  cfg.segment_bytes = 512;
  if (from == RecoveryScheme::kForwardErrorCorrection) {
    cfg.transmission = TransmissionScheme::kRateControl;
    cfg.inter_pdu_gap = sim::SimTime::microseconds(500);
  }
  ASSERT_TRUE(tko::sa::Synthesizer::validate(cfg).empty()) << cfg.describe();

  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 321); });
  std::size_t received_bytes = 0;
  std::set<std::vector<std::uint8_t>> unique;
  std::size_t received_count = 0;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) {
      auto b = m.linearize();
      received_bytes += b.size();
      ++received_count;
      unique.insert(std::move(b));
    });
  });

  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  constexpr int kUnits = 60;
  int sent = 0;
  for (; sent < kUnits / 2; ++sent) {
    session.send(tko::Message::from_bytes(pattern(512, static_cast<std::uint8_t>(sent)),
                                          &world.host(0).buffers()));
  }
  world.run_for(sim::SimTime::milliseconds(5));  // some PDUs in flight

  auto cfg2 = cfg;
  cfg2.recovery = to;
  if (to == RecoveryScheme::kForwardErrorCorrection) {
    cfg2.ack = AckScheme::kEveryN;
    cfg2.transmission = TransmissionScheme::kRateControl;
    cfg2.inter_pdu_gap = sim::SimTime::microseconds(500);
  } else if (to == RecoveryScheme::kGoBackN || to == RecoveryScheme::kSelectiveRepeat) {
    cfg2.ack = AckScheme::kImmediate;
    cfg2.transmission = TransmissionScheme::kSlidingWindow;
  }
  ASSERT_TRUE(tko::sa::Synthesizer::validate(cfg2).empty()) << cfg2.describe();
  session.reconfigure(cfg2);
  EXPECT_EQ(session.context().reliability().name(),
            std::string_view(tko::sa::to_string(to)));

  for (; sent < kUnits; ++sent) {
    session.send(tko::Message::from_bytes(pattern(512, static_cast<std::uint8_t>(sent)),
                                          &world.host(0).buffers()));
  }
  world.run_for(sim::SimTime::seconds(10));

  // On a clean LAN no scheme loses data, so EVERY transition must deliver
  // all 60 units exactly once.
  EXPECT_EQ(received_count, static_cast<std::size_t>(kUnits)) << "units lost across segue";
  EXPECT_EQ(unique.size(), received_count) << "duplicate delivery across segue";
  EXPECT_EQ(received_bytes, static_cast<std::size_t>(kUnits) * 512);
}

std::vector<SeguePair> all_segue_pairs() {
  std::vector<SeguePair> pairs;
  const RecoveryScheme schemes[] = {RecoveryScheme::kNone, RecoveryScheme::kGoBackN,
                                    RecoveryScheme::kSelectiveRepeat,
                                    RecoveryScheme::kForwardErrorCorrection};
  for (const auto from : schemes) {
    for (const auto to : schemes) {
      if (from != to) pairs.push_back({from, to});
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllRecoveryTransitions, SegueMatrix,
                         ::testing::ValuesIn(all_segue_pairs()), segue_name);

// Retransmission-to-retransmission transitions must also survive a LOSSY
// path: the inherited unacked store keeps recovering what the wire ate.
class LossySegue : public ::testing::TestWithParam<SeguePair> {};

TEST_P(LossySegue, ReliableTransitionsDeliverEverythingUnderLoss) {
  const auto [from, to] = GetParam();
  SessionConfig cfg;
  cfg.connection = ConnectionScheme::kImplicit;
  cfg.transmission = TransmissionScheme::kSlidingWindow;
  cfg.window_pdus = 8;
  cfg.recovery = from;
  cfg.detection = DetectionScheme::kCrc32Trailer;
  cfg.ack = AckScheme::kImmediate;
  cfg.ordered_delivery = true;
  cfg.segment_bytes = 512;

  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 1, 611); });
  std::size_t received_bytes = 0;
  std::set<std::vector<std::uint8_t>> unique;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) {
      auto b = m.linearize();
      received_bytes += b.size();
      unique.insert(std::move(b));
    });
  });
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);

  constexpr int kUnits = 80;
  int sent = 0;
  for (; sent < kUnits / 2; ++sent) {
    session.send(tko::Message::from_bytes(pattern(512, static_cast<std::uint8_t>(sent)),
                                          &world.host(0).buffers()));
  }
  world.run_for(sim::SimTime::milliseconds(200));  // losses in flight

  auto cfg2 = cfg;
  cfg2.recovery = to;
  session.reconfigure(cfg2);
  for (; sent < kUnits; ++sent) {
    session.send(tko::Message::from_bytes(pattern(512, static_cast<std::uint8_t>(sent)),
                                          &world.host(0).buffers()));
  }
  world.run_for(sim::SimTime::seconds(60));

  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kUnits)) << "loss across lossy segue";
  EXPECT_EQ(received_bytes, static_cast<std::size_t>(kUnits) * 512);
}

INSTANTIATE_TEST_SUITE_P(
    RetransmittingPairs, LossySegue,
    ::testing::Values(SeguePair{RecoveryScheme::kGoBackN, RecoveryScheme::kSelectiveRepeat},
                      SeguePair{RecoveryScheme::kSelectiveRepeat, RecoveryScheme::kGoBackN}),
    segue_name);

// ---------------------------------------------------------------------------
// Message model checking
// ---------------------------------------------------------------------------

class MessageModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageModel, RandomOperationsMatchReference) {
  sim::Rng rng(GetParam());
  os::BufferPool pool;
  tko::Message msg(&pool);
  std::vector<std::uint8_t> ref;

  for (int step = 0; step < 300; ++step) {
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // append
        const auto n = rng.uniform_int(0, 64);
        std::vector<std::uint8_t> bytes(n);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        msg.append(bytes);
        ref.insert(ref.end(), bytes.begin(), bytes.end());
        break;
      }
      case 1: {  // push header
        const auto n = rng.uniform_int(1, 24);
        std::vector<std::uint8_t> bytes(n);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        msg.push(bytes);
        ref.insert(ref.begin(), bytes.begin(), bytes.end());
        break;
      }
      case 2: {  // pop
        if (ref.empty()) break;
        const auto n = rng.uniform_int(1, ref.size());
        const auto got = msg.pop(n);
        const std::vector<std::uint8_t> want(ref.begin(), ref.begin() + static_cast<long>(n));
        ASSERT_EQ(got, want) << "pop mismatch at step " << step;
        ref.erase(ref.begin(), ref.begin() + static_cast<long>(n));
        break;
      }
      case 3: {  // split then re-concat (must be identity)
        const auto at = ref.empty() ? 0 : rng.uniform_int(0, ref.size());
        auto tail = msg.split(at);
        msg.concat(std::move(tail));
        break;
      }
      case 4: {  // clone and deep_copy must match the reference
        auto c = msg.clone();
        ASSERT_EQ(c.linearize(), ref);
        auto d = msg.deep_copy();
        ASSERT_EQ(d.linearize(), ref);
        break;
      }
      case 5: {  // peek prefix
        if (ref.empty()) break;
        const auto n = rng.uniform_int(1, ref.size());
        const auto got = msg.peek(n);
        const std::vector<std::uint8_t> want(ref.begin(), ref.begin() + static_cast<long>(n));
        ASSERT_EQ(got, want);
        break;
      }
    }
    ASSERT_EQ(msg.size(), ref.size()) << "size mismatch at step " << step;
  }
  EXPECT_EQ(msg.linearize(), ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageModel, ::testing::Range<std::uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// Routing invariants on random topologies
// ---------------------------------------------------------------------------

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, RandomTopologyInvariants) {
  sim::Rng rng(GetParam());
  sim::EventScheduler sched;
  net::Network net(sched, GetParam());

  const std::size_t n_switches = 2 + rng.uniform_int(0, 4);
  const std::size_t n_hosts = 2 + rng.uniform_int(0, 4);
  std::vector<net::NodeId> switches, hosts;
  for (std::size_t i = 0; i < n_switches; ++i) {
    switches.push_back(net.add_switch("s" + std::to_string(i)));
  }
  // Ring of switches guarantees connectivity; random chords added on top.
  for (std::size_t i = 0; i < n_switches; ++i) {
    net::LinkConfig cfg;
    cfg.mtu_bytes = 1000 + rng.uniform_int(0, 4000);
    net.connect(switches[i], switches[(i + 1) % n_switches], cfg);
  }
  for (int chord = 0; chord < 2; ++chord) {
    const auto a = switches[rng.uniform_int(0, n_switches - 1)];
    const auto b = switches[rng.uniform_int(0, n_switches - 1)];
    if (a != b) {
      net::LinkConfig cfg;
      cfg.mtu_bytes = 1000 + rng.uniform_int(0, 4000);
      net.connect(a, b, cfg);
    }
  }
  for (std::size_t i = 0; i < n_hosts; ++i) {
    hosts.push_back(net.add_host("h" + std::to_string(i)));
    net::LinkConfig cfg;
    cfg.mtu_bytes = 1000 + rng.uniform_int(0, 4000);
    net.connect(hosts.back(), switches[rng.uniform_int(0, n_switches - 1)], cfg);
  }

  for (const auto a : hosts) {
    for (const auto b : hosts) {
      if (a == b) continue;
      const auto path = net.path(a, b);
      ASSERT_GE(path.size(), 2u) << "connected graph must route all host pairs";
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      // Path is simple (no repeated nodes).
      std::set<net::NodeId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
      // MTU equals the min over the path links (probe by delivery).
      const auto mtu = net.path_mtu(a, b);
      EXPECT_GE(mtu, 1000u);
      EXPECT_LE(mtu, 5000u);
      // A packet exactly at the path MTU is deliverable end to end.
      int got = 0;
      net.set_host_rx(b, [&](net::Packet&&) { ++got; });
      net::Packet p;
      p.src = {a, 1};
      p.dst = {b, 1};
      p.payload = tko::Message::filled(mtu - net::Packet::kNetworkHeaderBytes, 1);
      net.inject(std::move(p));
      sched.run();
      EXPECT_EQ(got, 1) << "MTU-sized packet must survive the path";
      net.set_host_rx(b, nullptr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::Range<std::uint64_t>(100, 112));

}  // namespace
}  // namespace adaptive
