// Session-plane test battery (DESIGN §14, ctest label `city`).
//
// Pins the contracts the metro-scale session plane rests on:
//  * SessionTable — O(1) insert/find/erase across shard counts, duplicate
//    ids rejected, tombstone compaction keeps probe chains bounded under
//    open/close churn, and iteration order is a pure function of the
//    operation history (the property sweep byte-identity rests on).
//  * SynthesisKey / SynthesisCache — descriptor quantization coalesces
//    dynamic-state jitter but splits every delta that can change
//    mechanism selection; LRU eviction order is deterministic and pinned.
//  * MANTTS integration — homogeneous opens are served from the cache,
//    a renegotiation (RECONFIG) invalidates the stale derivation so the
//    next identical open re-runs the pipeline, and segues provoked by
//    PR 2 fault plans do the same while sessions churn around them.
//  * City driver — a 10k-session world swept at jobs=1 and jobs=8 merges
//    byte-identically; a chaos-impaired churn soak tears down to the
//    exact pool baseline with every table slot reaped; the invariant
//    oracle stays clean under a generated chaos plan.
#include "adaptive/city.hpp"
#include "adaptive/scenario.hpp"
#include "adaptive/world.hpp"
#include "mantts/mantts.hpp"
#include "mantts/policy.hpp"
#include "mantts/synthesis_cache.hpp"
#include "net/fault_injector.hpp"
#include "net/topologies.hpp"
#include "sim/chaos.hpp"
#include "sim/fault_plan.hpp"
#include "tko/session_table.hpp"
#include "tko/transport.hpp"
#include "unites/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

namespace adaptive {
namespace {

using mantts::Acd;
using mantts::SynthesisCache;
using mantts::SynthesisKey;
using mantts::make_synthesis_key;
using tko::SessionTable;

// ---------------------------------------------------------------------------
// SessionTable: the sharded open-addressed datapath structure.
// ---------------------------------------------------------------------------

std::uint32_t sid(std::uint32_t host, std::uint32_t seq) { return (host << 20) | seq; }

TEST(SessionTable, InsertLookupEraseAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                                   std::size_t{64}}) {
    SCOPED_TRACE(shards);
    SessionTable<int> t(shards);
    EXPECT_EQ(t.shard_count(), shards);  // all powers of two already
    EXPECT_TRUE(t.empty());

    // Ids shaped like the transport's (node << 20) | seq.
    constexpr std::uint32_t kHosts = 8, kSeqs = 125;
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      for (std::uint32_t s = 0; s < kSeqs; ++s) {
        t.insert(sid(h, s), std::make_unique<int>(static_cast<int>(h * 1000 + s)));
      }
    }
    EXPECT_EQ(t.size(), kHosts * kSeqs);
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      for (std::uint32_t s = 0; s < kSeqs; ++s) {
        int* v = t.find(sid(h, s));
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, static_cast<int>(h * 1000 + s));
      }
    }
    EXPECT_EQ(t.find(sid(kHosts, 0)), nullptr);

    // A duplicate id is a protocol bug (20-bit sequence wrap onto a live
    // session), not a table miss.
    EXPECT_THROW(t.insert(sid(0, 0), std::make_unique<int>(-1)), std::logic_error);

    // Erase every odd seq; the survivors must stay reachable.
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      for (std::uint32_t s = 1; s < kSeqs; s += 2) EXPECT_TRUE(t.erase(sid(h, s)));
    }
    EXPECT_FALSE(t.erase(sid(0, 1)));  // already gone
    EXPECT_EQ(t.size(), kHosts * ((kSeqs + 1) / 2));
    for (std::uint32_t h = 0; h < kHosts; ++h) {
      EXPECT_EQ(t.find(sid(h, 1)), nullptr);
      ASSERT_NE(t.find(sid(h, 2)), nullptr);
    }

    // take() transfers ownership out of the table.
    auto owned = t.take(sid(3, 4));
    ASSERT_NE(owned, nullptr);
    EXPECT_EQ(*owned, 3004);
    EXPECT_EQ(t.find(sid(3, 4)), nullptr);

    std::size_t visited = 0;
    t.for_each([&](const int&) { ++visited; });
    EXPECT_EQ(visited, t.size());
  }
}

TEST(SessionTable, ChurnCompactsTombstonesAndBoundsProbes) {
  // Single shard concentrates the churn so the compaction path must do
  // the work; the probe bound is the whole point of the structure.
  SessionTable<int> t(1);
  constexpr std::uint32_t kLive = 512;
  std::uint32_t next = 0;
  for (; next < kLive; ++next) t.insert(next, std::make_unique<int>(1));

  for (std::uint32_t cycle = 0; cycle < 20'000; ++cycle) {
    EXPECT_TRUE(t.erase(next - kLive));
    t.insert(next, std::make_unique<int>(1));
    ++next;
  }
  EXPECT_EQ(t.size(), kLive);
  for (std::uint32_t id = next - kLive; id < next; ++id) {
    EXPECT_NE(t.find(id), nullptr);
  }

  const auto& st = t.stats();
  EXPECT_EQ(st.inserts, kLive + 20'000);
  EXPECT_EQ(st.erases, 20'000u);
  // Tombstones piled up and were compacted away — repeatedly.
  EXPECT_GT(st.rehashes, 10u);
  // Open addressing at <= 3/4 load with compaction: probe chains stay
  // far from O(capacity) even after 20k churn cycles.
  EXPECT_LT(st.max_probe, 128u);
  EXPECT_LT(static_cast<double>(st.probe_steps) / static_cast<double>(st.inserts + st.finds),
            4.0);
}

TEST(SessionTable, IterationOrderIsAPureFunctionOfHistory) {
  // Two tables fed the identical operation history must expose the
  // identical for_each order — sweep byte-identity leans on this. Values
  // carry their own id so the visit sequence is observable.
  auto build = [] {
    auto t = std::make_unique<SessionTable<std::uint32_t>>(4);
    for (std::uint32_t h = 0; h < 5; ++h) {
      for (std::uint32_t s = 0; s < 50; ++s) {
        t->insert(sid(h, s), std::make_unique<std::uint32_t>(sid(h, s)));
      }
    }
    for (std::uint32_t h = 0; h < 5; ++h) {
      for (std::uint32_t s = 0; s < 50; s += 3) t->erase(sid(h, s));
    }
    for (std::uint32_t s = 50; s < 70; ++s) {
      t->insert(sid(2, s), std::make_unique<std::uint32_t>(sid(2, s)));
    }
    return t;
  };
  auto collect = [](const SessionTable<std::uint32_t>& t) {
    std::vector<std::uint32_t> order;
    t.for_each([&](const std::uint32_t& id) { order.push_back(id); });
    return order;
  };
  auto a = build();
  auto b = build();
  const auto oa = collect(*a);
  EXPECT_EQ(oa.size(), a->size());
  EXPECT_EQ(oa, collect(*a));  // stable across repeated visits
  EXPECT_EQ(oa, collect(*b));  // identical across identical histories
  EXPECT_EQ(a->stats().rehashes, b->stats().rehashes);
  EXPECT_EQ(a->stats().max_probe, b->stats().max_probe);
}

// ---------------------------------------------------------------------------
// SynthesisKey quantization and SynthesisCache LRU determinism.
// ---------------------------------------------------------------------------

Acd city_acd() {
  Acd acd;
  acd.remotes = {{1, tko::kTransportPort}};
  acd.quantitative.average_throughput = sim::Rate::kbps(64);
  acd.quantitative.peak_throughput = sim::Rate::kbps(64);
  acd.quantitative.duration = sim::SimTime::seconds(2);
  return acd;
}

mantts::NetworkStateDescriptor lan_descriptor() {
  mantts::NetworkStateDescriptor d;
  d.reachable = true;
  d.rtt = sim::SimTime::microseconds(2'200);
  d.bottleneck = sim::Rate::mbps(10);
  d.mtu = 1500;
  d.bit_error_rate = 1e-9;
  d.congestion = 0.05;
  d.recent_loss_rate = 0.0;
  d.route_version = 1;
  return d;
}

TEST(SynthesisKey, QuantizationCoalescesJitterButSplitsDecisions) {
  const Acd acd = city_acd();
  const auto d1 = lan_descriptor();
  const SynthesisKey k1 = make_synthesis_key(acd, d1);

  // Jitter inside the quantization bands: same key.
  auto d2 = d1;
  d2.rtt = sim::SimTime::microseconds(2'900);  // same octave as 2.2ms
  d2.congestion = 0.20;  // still quarter 0
  EXPECT_EQ(make_synthesis_key(acd, d2), k1);

  // Nonzero loss rates inside one decision band coalesce too (exactly
  // zero is its own band: derive_scs treats a lossless path specially).
  auto la = d1, lb = d1;
  la.recent_loss_rate = 0.002;
  lb.recent_loss_rate = 0.009;  // same (0, 0.01) band
  EXPECT_EQ(make_synthesis_key(acd, la), make_synthesis_key(acd, lb));
  EXPECT_NE(make_synthesis_key(acd, la), k1);

  // Deltas that can change mechanism selection: different keys.
  auto cong = d1;
  cong.congestion = 0.30;  // crosses the 0.25 derive_scs threshold
  EXPECT_NE(make_synthesis_key(acd, cong), k1);

  auto mtu = d1;
  mtu.mtu = 9000;
  EXPECT_NE(make_synthesis_key(acd, mtu), k1);

  auto route = d1;
  route.route_version = 2;
  EXPECT_NE(make_synthesis_key(acd, route), k1);

  auto degraded = d1;
  degraded.degraded = true;
  EXPECT_NE(make_synthesis_key(acd, degraded), k1);

  auto lossy = d1;
  lossy.recent_loss_rate = 0.06;  // crosses the 0.05 band
  EXPECT_NE(make_synthesis_key(acd, lossy), k1);

  // The ACD side is an exact fingerprint.
  Acd tighter = acd;
  tighter.quantitative.loss_tolerance = 0.1;
  EXPECT_NE(make_synthesis_key(tighter, d1), k1);

  Acd multi = acd;
  multi.remotes.push_back({2, tko::kTransportPort});
  EXPECT_NE(make_synthesis_key(multi, d1), k1);

  // Remote *addresses* are deliberately excluded: equivalent paths share.
  Acd other_host = acd;
  other_host.remotes = {{7, tko::kTransportPort}};
  EXPECT_EQ(make_synthesis_key(other_host, d1), k1);
}

TEST(SynthesisCache, DeterministicLruEvictionOrderPinned) {
  SynthesisCache cache(4);
  auto key = [](std::uint64_t i) {
    SynthesisKey k;
    k.acd_fnv = i;
    return k;
  };
  const tko::sa::SessionConfig cfg;

  for (std::uint64_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(cache.lookup(key(i)), nullptr);  // 4 misses
    cache.insert(key(i), mantts::Tsc::kNonRealTimeNonIsochronous, cfg);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.eviction_order(),
            (std::vector<SynthesisKey>{key(1), key(2), key(3), key(4)}));

  // A hit refreshes: k2 moves to most-recent.
  ASSERT_NE(cache.lookup(key(2)), nullptr);
  EXPECT_EQ(cache.eviction_order(),
            (std::vector<SynthesisKey>{key(1), key(3), key(4), key(2)}));

  // Insert at capacity evicts exactly the pinned victim (k1).
  cache.insert(key(5), mantts::Tsc::kNonRealTimeNonIsochronous, cfg);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(key(1)), nullptr);  // miss #5
  EXPECT_EQ(cache.eviction_order(),
            (std::vector<SynthesisKey>{key(3), key(4), key(2), key(5)}));

  // Re-inserting an existing key refreshes it, no eviction.
  cache.insert(key(3), mantts::Tsc::kNonRealTimeNonIsochronous, cfg);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.eviction_order(),
            (std::vector<SynthesisKey>{key(4), key(2), key(5), key(3)}));

  // Invalidation drops the entry exactly once.
  EXPECT_TRUE(cache.invalidate(key(4)));
  EXPECT_FALSE(cache.invalidate(key(4)));
  EXPECT_EQ(cache.eviction_order(),
            (std::vector<SynthesisKey>{key(2), key(5), key(3)}));

  const auto& st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 5u);
  EXPECT_EQ(st.insertions, 6u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.invalidations, 1u);
}

// ---------------------------------------------------------------------------
// MANTTS integration: the cache on the open path, and invalidation.
// ---------------------------------------------------------------------------

Acd implicit_acd(World& world, std::size_t dst) {
  Acd acd = city_acd();
  acd.remotes = {world.transport_address(dst)};
  return acd;
}

tko::TransportSession* open_now(World& world, std::size_t src, const Acd& acd) {
  tko::TransportSession* session = nullptr;
  world.mantts(src).open_session(acd, [&](mantts::MantttsEntity::OpenResult r) {
    ASSERT_FALSE(r.refused);
    session = r.session;
  });
  return session;
}

TEST(SessionPlane, HomogeneousOpensAreServedFromTheCache) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 21); });
  auto& entity = world.mantts(0);
  std::vector<tko::TransportSession*> sessions;

  for (int i = 0; i < 32; ++i) {
    sessions.push_back(open_now(world, 0, implicit_acd(world, 1)));
    ASSERT_NE(sessions.back(), nullptr);
    world.run_for(sim::SimTime::milliseconds(5));
  }
  EXPECT_EQ(entity.synthesis_cache().stats().misses, 1u);
  EXPECT_EQ(entity.synthesis_cache().stats().hits, 31u);
  EXPECT_EQ(entity.synthesis_cache().stats().insertions, 1u);
  EXPECT_GT(entity.synthesis_cache().hit_rate(), 0.9);

  // Heterogeneity shatters exactly per-variant: 4 distinct priority
  // bytes over 8 opens cost 4 misses then hit.
  for (int i = 0; i < 8; ++i) {
    Acd acd = implicit_acd(world, 1);
    acd.qualitative.priority_delivery = true;
    acd.qualitative.priority = static_cast<std::uint8_t>(i % 4);
    sessions.push_back(open_now(world, 0, acd));
    ASSERT_NE(sessions.back(), nullptr);
    world.run_for(sim::SimTime::milliseconds(5));
  }
  EXPECT_EQ(entity.synthesis_cache().stats().misses, 5u);
  EXPECT_EQ(entity.synthesis_cache().stats().hits, 35u);

  for (auto* s : sessions) entity.close_session(*s);
  world.run_for(sim::SimTime::seconds(1));
}

TEST(SessionPlane, ReconfigInvalidatesAndBypassesTheStaleEntry) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 22); });
  auto& entity = world.mantts(0);

  tko::TransportSession* s1 = open_now(world, 0, implicit_acd(world, 1));
  tko::TransportSession* s2 = open_now(world, 0, implicit_acd(world, 1));
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(entity.synthesis_cache().stats().misses, 1u);
  EXPECT_EQ(entity.synthesis_cache().stats().hits, 1u);
  world.run_for(sim::SimTime::milliseconds(50));

  // Renegotiate s1: the cached Stage I/II derivation no longer describes
  // what the pipeline would produce, so it must be dropped, not served.
  tko::sa::SessionConfig cfg = s1->config();
  cfg.window_pdus = cfg.window_pdus == 8 ? 16 : 8;
  entity.reconfigure_session(*s1, cfg);
  EXPECT_EQ(entity.synthesis_cache().stats().invalidations, 1u);
  EXPECT_EQ(entity.synthesis_cache().size(), 0u);
  world.run_for(sim::SimTime::milliseconds(200));
  EXPECT_GE(entity.stats().reconfigs_sent, 1u);

  // The next identical open re-runs the pipeline (miss), repopulating.
  tko::TransportSession* s3 = open_now(world, 0, implicit_acd(world, 1));
  ASSERT_NE(s3, nullptr);
  EXPECT_EQ(entity.synthesis_cache().stats().misses, 2u);
  EXPECT_EQ(entity.synthesis_cache().stats().insertions, 2u);
  EXPECT_EQ(entity.synthesis_cache().size(), 1u);

  // Clean closes release the per-session key mapping *without* touching
  // the cache — only renegotiation invalidates.
  entity.close_session(*s1);
  entity.close_session(*s2);
  entity.close_session(*s3);
  world.run_for(sim::SimTime::seconds(1));
  EXPECT_EQ(entity.synthesis_cache().stats().invalidations, 1u);
  EXPECT_EQ(entity.synthesis_cache().size(), 1u);
}

TEST(SessionPlane, SegueUnderChurnInvalidatesStaleDerivations) {
  // The PR 2 fault plan (link flaps + a BER burst) drives the policy
  // engine into segues/renegotiations on a long-lived *implicit* session
  // — implicit because max_latency < 3x rtt selects the lightweight
  // connection scheme even for a long session — while identical sessions
  // churn around it. Every renegotiation must invalidate the shared
  // cached derivation; churn opens after the segue re-derive.
  World world([](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, 11); });
  for (std::size_t i = 0; i < world.topology().hosts.size(); ++i) {
    world.transport(i).set_session_reaper(sim::SimTime::milliseconds(20));
  }
  auto& entity = world.mantts(0);
  const auto descriptor = entity.nmi().sample(world.node(1));
  ASSERT_TRUE(descriptor.reachable);

  Acd acd;
  acd.remotes = {world.transport_address(1)};
  acd.quantitative.average_throughput = sim::Rate::kbps(64);
  acd.quantitative.peak_throughput = sim::Rate::kbps(64);
  acd.quantitative.duration = sim::SimTime::seconds(30);  // adaptation-worthy
  acd.quantitative.max_latency = descriptor.rtt * 2;      // forces implicit
  acd.adjustments = mantts::PolicyEngine::fault_recovery_rules();

  // Implicit sessions piggyback the SCS on first data — a session that
  // never sends has no passive mirror to answer its FIN, so every
  // session here carries at least one message (as city sessions do).
  auto send_one = [](tko::TransportSession& s) {
    tko::Message m(s.buffer_pool());
    auto span = m.append_uninit(64);
    std::memset(span.data(), 0x5A, span.size());
    EXPECT_TRUE(s.send(std::move(m)));
  };

  tko::TransportSession* primary = nullptr;
  mantts::MantttsEntity::OpenResult opened;
  entity.open_session(acd, [&](mantts::MantttsEntity::OpenResult r) {
    opened = r;
    primary = r.session;
  });
  ASSERT_NE(primary, nullptr);
  EXPECT_EQ(opened.scs.connection, tko::sa::ConnectionScheme::kImplicit);
  ASSERT_TRUE(entity.adaptation_enabled(*primary));
  EXPECT_EQ(entity.synthesis_cache().stats().misses, 1u);
  send_one(*primary);

  net::FaultInjector injector(world.network(), world.topology().scenario_links,
                              world.topology().hosts);
  injector.arm(sim::parse_fault_plan(
      "flap@2+0.3:link=0,count=3,period=1;burst@1+4:link=0,ber=1e-4"));

  // Churn: short-lived sessions open and close around the primary while
  // the plan runs. A short duration keeps them on the implicit path no
  // matter what the fault episodes do to the sampled RTT.
  Acd churn_acd = acd;
  churn_acd.quantitative.duration = sim::SimTime::seconds(2);
  churn_acd.adjustments.clear();
  tko::TransportSession* churn = nullptr;
  for (int i = 0; i < 10; ++i) {
    world.run_for(sim::SimTime::milliseconds(800));
    if (churn != nullptr) entity.close_session(*churn);
    churn = open_now(world, 0, churn_acd);
    ASSERT_NE(churn, nullptr);
    send_one(*churn);
  }
  world.run_for(sim::SimTime::seconds(6));  // recovery window

  const auto& st = entity.stats();
  EXPECT_GE(st.faults_detected, 1u);
  EXPECT_GE(st.reconfigs_sent, 1u);
  // The segue/renegotiation path dropped the stale shared derivation at
  // least once; churn opens after that re-derived (so > 1 total miss).
  EXPECT_GE(entity.synthesis_cache().stats().invalidations, 1u);
  EXPECT_GT(entity.synthesis_cache().stats().misses, 1u);

  entity.close_session(*churn);
  entity.close_session(*primary);
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_EQ(world.transport(0).session_count(), 0u);
  EXPECT_EQ(world.transport(1).session_count(), 0u);
}

TEST(SessionPlane, SlimSessionBudget) {
  // The mem.bytes_per_session work keeps the fixed per-session footprint
  // bounded: growing TransportSession past this line needs a deliberate
  // decision (and a new pin), not an accidental member.
  EXPECT_LE(sizeof(tko::TransportSession), 1024u);
  EXPECT_LE(sizeof(tko::MessageQueue), 64u);
}

// ---------------------------------------------------------------------------
// City driver: sweep byte-identity and the chaos churn soak.
// ---------------------------------------------------------------------------

TEST(CitySweep, JobsOneAndEightMergeByteIdentically) {
  // A 10k-session world (5000 driver opens = ~10k transport sessions at
  // the mid-hold plateau) swept over two seeds: jobs=1 and jobs=8 must
  // produce the same merged bytes — trace digest, canonical metrics
  // export, and every per-run outcome.
  CitySweepConfig cfg;
  cfg.base.sessions = 5'000;
  cfg.base.churn_cycles = 500;
  cfg.base.messages_per_session = 2;
  // 5000 opens' first messages + churn must clear the per-host 10 Mb/s
  // star links before the mid-hold sample, or the plateau undercounts.
  cfg.base.ramp = sim::SimTime::seconds(2);
  cfg.base.hold = sim::SimTime::seconds(2);
  cfg.base.drain = sim::SimTime::seconds(2);
  cfg.count = 2;
  cfg.base_seed = 3;
  cfg.capture_trace = true;

  cfg.jobs = 1;
  const CitySweepResult serial = run_city_sweep(cfg);
  cfg.jobs = 8;
  const CitySweepResult parallel = run_city_sweep(cfg);

  EXPECT_EQ(serial.trace_digest, parallel.trace_digest);
  EXPECT_EQ(serial.trace_events_emitted, parallel.trace_events_emitted);
  std::ostringstream ja, jb;
  unites::write_metrics_jsonl(ja, serial.merged);
  unites::write_metrics_jsonl(jb, parallel.merged);
  EXPECT_EQ(ja.str(), jb.str());

  EXPECT_EQ(serial.opened, parallel.opened);
  EXPECT_EQ(serial.messages_delivered, parallel.messages_delivered);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    SCOPED_TRACE(i);
    const CityOutcome& a = serial.runs[i];
    const CityOutcome& b = parallel.runs[i];
    EXPECT_GE(a.peak_transport_sessions, 9'900u);
    EXPECT_EQ(a.opened, b.opened);
    EXPECT_EQ(a.refused, 0u);
    EXPECT_EQ(a.messages_delivered, b.messages_delivered);
    EXPECT_EQ(a.cache.hits, b.cache.hits);
    EXPECT_EQ(a.cache.misses, b.cache.misses);
    EXPECT_EQ(a.table.inserts, b.table.inserts);
    EXPECT_EQ(a.table.max_probe, b.table.max_probe);
    EXPECT_EQ(a.residual_sessions, b.residual_sessions);
    EXPECT_EQ(a.pool_live_bytes_final, b.pool_live_bytes_final);
  }
}

TEST(CitySoak, ChurnUnderChaosTearsDownToTheExactBaseline) {
  // Open/close churn with a generated chaos plan active: whatever the
  // nemesis does to the links, teardown must return the world to its
  // exact resource baseline — every pinned payload byte released, every
  // table slot reaped.
  CityOptions opt;
  opt.sessions = 1'500;
  opt.churn_cycles = 600;
  opt.messages_per_session = 1;
  opt.ramp = sim::SimTime::seconds(2);
  opt.hold = sim::SimTime::seconds(2);
  opt.drain = sim::SimTime::seconds(4);
  opt.seed = 5;

  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 8, 5); },
              os::CpuConfig{}, city_limits(opt));

  sim::ChaosProfile prof;
  prof.link_count = world.topology().scenario_links.size();
  prof.host_count = world.topology().hosts.size();
  prof.horizon_sec = 4.0;  // faults end before the drain starts
  prof.min_faults = 2;
  prof.max_faults = 4;
  prof.max_outage_sec = 0.5;
  prof.allow_partition = false;
  opt.faults = sim::ChaosPlanGenerator(prof).generate(opt.seed);

  const auto baseline = world.resource_snapshot();
  const CityOutcome out = run_city(world, opt);

  EXPECT_EQ(out.opened, opt.sessions + opt.churn_cycles);
  EXPECT_EQ(out.refused, 0u);
  EXPECT_GT(out.messages_delivered, 0u);
  EXPECT_LE(out.messages_delivered, out.messages_sent);

  // The invariants the soak exists for: mem.live_bytes back to baseline,
  // zero residual table slots, both endpoints of every open reaped.
  EXPECT_EQ(out.residual_sessions, 0u);
  EXPECT_EQ(out.pool_live_bytes_final, out.pool_live_bytes_baseline);
  EXPECT_EQ(out.reaped, 2 * out.opened);
  auto pool_live = [](const unites::ResourceSnapshot& snap) {
    std::uint64_t sum = 0;
    for (const auto& h : snap.hosts) sum += h.pool.live_bytes;
    return sum;
  };
  const auto after = world.resource_snapshot();
  EXPECT_EQ(pool_live(after), pool_live(baseline));
  EXPECT_EQ(after.sessions.size(), 0u);
}

TEST(CitySoak, InvariantOracleStaysCleanUnderAChaosPlan) {
  // The delivery-invariant oracle (PR 5) applied to an adaptive session
  // impaired by the same generator the soak uses: reliable-class bytes
  // arrive exactly once, in order, with recovery closing out.
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 8, 17); });

  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.rules = mantts::PolicyEngine::fault_recovery_rules();
  opt.scale = 0.35;
  opt.duration = sim::SimTime::seconds(8);
  opt.drain = sim::SimTime::seconds(12);
  opt.seed = 17;
  const sim::ChaosProfile prof = size_chaos_profile({}, world, opt, 4);
  opt.faults = sim::ChaosPlanGenerator(prof).generate(opt.seed);

  const RunOutcome out = run_scenario(world, opt);
  EXPECT_TRUE(out.oracle.ok()) << out.oracle.describe();
  EXPECT_EQ(out.sink.bytes_received, out.source.bytes_sent);
  EXPECT_EQ(out.sink.duplicates, 0u);
}

}  // namespace
}  // namespace adaptive
