// Unit tests for the discrete-event kernel: virtual time, scheduler
// ordering/cancellation, and the reproducible RNG.
#include "sim/event_scheduler.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

namespace adaptive::sim {
namespace {

TEST(SimTime, ConstructorsAndAccessors) {
  EXPECT_EQ(SimTime::microseconds(3).ns(), 3'000);
  EXPECT_EQ(SimTime::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(250).sec(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(1500).ms(), 1.5);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::milliseconds(10);
  const auto b = SimTime::milliseconds(3);
  EXPECT_EQ((a + b).ns(), 13'000'000);
  EXPECT_EQ((a - b).ns(), 7'000'000);
  EXPECT_EQ((b * 4).ns(), 12'000'000);
  EXPECT_EQ((a / 2).ns(), 5'000'000);
  EXPECT_LT(b, a);
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_FALSE(a.is_infinite());
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::nanoseconds(42).to_string(), "42ns");
  EXPECT_EQ(SimTime::infinity().to_string(), "+inf");
  EXPECT_NE(SimTime::seconds(2.0).to_string().find("s"), std::string::npos);
}

TEST(Rate, TransmissionTime) {
  // 1000 bytes at 10 Mbps = 8000 bits / 1e7 bps = 800 us.
  EXPECT_EQ(Rate::mbps(10).transmission_time(1000).ns(), 800'000);
  EXPECT_EQ(Rate::kbps(64).transmission_time(8).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(Rate::gbps(1).mbits_per_sec(), 1000.0);
}

TEST(EventScheduler, RunsInTimeOrder) {
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::milliseconds(3), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::milliseconds(1), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::milliseconds(2), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime::milliseconds(3));
}

TEST(EventScheduler, FifoWithinSameTimestamp) {
  EventScheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(SimTime::milliseconds(1), [&, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventScheduler, CancelPreventsExecution) {
  EventScheduler sched;
  bool fired = false;
  auto h = sched.schedule_after(SimTime::milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.executed_events(), 0u);
}

TEST(EventScheduler, RunUntilStopsAndAdvancesClock) {
  EventScheduler sched;
  int count = 0;
  sched.schedule_at(SimTime::milliseconds(1), [&] { ++count; });
  sched.schedule_at(SimTime::milliseconds(5), [&] { ++count; });
  const auto n = sched.run_until(SimTime::milliseconds(2));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.now(), SimTime::milliseconds(2));
  sched.run();
  EXPECT_EQ(count, 2);
}

TEST(EventScheduler, EventsCanScheduleEvents) {
  EventScheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sched.schedule_after(SimTime::microseconds(1), recurse);
  };
  sched.schedule_after(SimTime::microseconds(1), recurse);
  sched.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sched.now(), SimTime::microseconds(10));
}

// ---------------------------------------------------------------------------
// Timer-wheel specifics: the scheduler is a hierarchical wheel (1024ns
// ticks, 64 slots per level), so delays that cross level boundaries must
// cascade down without perturbing (when, seq) order, and sub-tick
// resolution must survive the coarse slotting.
// ---------------------------------------------------------------------------

TEST(EventScheduler, FarFutureCascadesInOrder) {
  EventScheduler sched;
  std::vector<int> order;
  // One event per wheel level, inserted in shuffled order: 50us sits in
  // level 0's span, 1ms in level 1's, 100ms in level 2's, 3s and 20s in
  // level 3's. Each must cascade down to level 0 before firing.
  sched.schedule_at(SimTime::seconds(3.0), [&] { order.push_back(4); });
  sched.schedule_at(SimTime::microseconds(50), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::seconds(20.0), [&] { order.push_back(5); });
  sched.schedule_at(SimTime::milliseconds(1), [&] { order.push_back(2); });
  sched.schedule_at(SimTime::milliseconds(100), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(sched.now(), SimTime::seconds(20.0));
  EXPECT_EQ(sched.executed_events(), 5u);
}

TEST(EventScheduler, SubTickTimesOrderWithinOneSlot) {
  // 50ns, 100ns, and 900ns all share wheel tick 0; the slot must still
  // fire them by exact timestamp, with FIFO breaking the 50ns tie.
  EventScheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::nanoseconds(900), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::nanoseconds(50), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::nanoseconds(50), [&] { order.push_back(2); });
  sched.schedule_at(SimTime::nanoseconds(100), [&] { order.push_back(4); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(sched.now(), SimTime::nanoseconds(900));
}

TEST(EventScheduler, RunUntilHonorsSubTickBoundary) {
  // Limit and event sit in the same 1024ns tick: the event at 1000ns must
  // not fire when running until 999ns, and now() must not regress.
  EventScheduler sched;
  bool fired = false;
  sched.schedule_at(SimTime::nanoseconds(1000), [&] { fired = true; });
  EXPECT_EQ(sched.run_until(SimTime::nanoseconds(999)), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.now(), SimTime::nanoseconds(999));
  EXPECT_EQ(sched.run_until(SimTime::nanoseconds(1000)), 1u);
  EXPECT_TRUE(fired);
}

TEST(EventScheduler, SameTickEntriesFiledUnderDifferentCursors) {
  // A lands in tick T while the cursor is at 0 (coarse level); the clock
  // then advances, and B and C join the same tick from a nearer cursor
  // (finer level). Fire order must still be exact (when, seq): C (earlier
  // sub-tick time, latest insertion) first, then A before B (FIFO at the
  // same timestamp) — regardless of which level each entry waited on.
  EventScheduler sched;
  std::vector<int> order;
  const auto t = SimTime::milliseconds(10);
  sched.schedule_at(t, [&] { order.push_back(1); });                             // A
  sched.schedule_at(SimTime::milliseconds(5), [&] {
    sched.schedule_at(t, [&] { order.push_back(2); });                           // B
    sched.schedule_at(t - SimTime::nanoseconds(100), [&] { order.push_back(3); });  // C
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
  EXPECT_EQ(sched.now(), t);
}

TEST(EventScheduler, CancelledFarEventNeverCascades) {
  EventScheduler sched;
  bool far = false, near = false;
  auto h = sched.schedule_at(SimTime::seconds(30.0), [&] { far = true; });
  sched.schedule_at(SimTime::milliseconds(1), [&] { near = true; });
  EXPECT_EQ(sched.pending_events(), 2u);
  h.cancel();
  sched.run();
  EXPECT_TRUE(near);
  EXPECT_FALSE(far);
  EXPECT_EQ(sched.executed_events(), 1u);
  EXPECT_EQ(sched.pending_events(), 0u);
  // The cancelled 30s entry must not have dragged the clock forward.
  EXPECT_EQ(sched.now(), SimTime::milliseconds(1));
}

TEST(EventScheduler, DoublingDelaysFireAtExactTimes) {
  // Delays 1us, 2us, 4us, ... 2^20 us (~1.05s) walk an event chain up
  // through every wheel level; each hop must land on its exact timestamp.
  EventScheduler sched;
  int hops = 0;
  std::int64_t expect_ns = 0;
  std::function<void(std::int64_t)> hop = [&](std::int64_t delay_us) {
    expect_ns += delay_us * 1000;
    ASSERT_EQ(sched.now().ns(), expect_ns);
    ++hops;
    if (delay_us < (1 << 20)) {
      sched.schedule_after(SimTime::microseconds(2 * delay_us),
                           [&, delay_us] { hop(2 * delay_us); });
    }
  };
  sched.schedule_after(SimTime::microseconds(1), [&] { hop(1); });
  sched.run();
  EXPECT_EQ(hops, 21);
}

TEST(EventScheduler, StressMatchesReferenceOrdering) {
  // 2000 events over 5 virtual seconds (spanning three wheel levels) with
  // every 7th cancelled: the fire sequence must equal a stable sort of the
  // survivors by timestamp — the heap's contract, kept by the wheel.
  EventScheduler sched;
  Rng rng(42);
  struct Ref {
    std::int64_t when_ns;
    int id;
  };
  std::vector<Ref> refs;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 2000; ++i) {
    const auto when =
        SimTime::nanoseconds(static_cast<std::int64_t>(rng.uniform_int(0, 5'000'000'000)));
    auto h = sched.schedule_at(when, [&fired, i] { fired.push_back(i); });
    if (i % 7 == 0) {
      handles.push_back(std::move(h));
    } else {
      refs.push_back({when.ns(), i});
    }
  }
  for (auto& h : handles) h.cancel();
  sched.run();
  std::stable_sort(refs.begin(), refs.end(),
                   [](const Ref& a, const Ref& b) { return a.when_ns < b.when_ns; });
  ASSERT_EQ(fired.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) EXPECT_EQ(fired[i], refs[i].id);
  EXPECT_EQ(sched.executed_events(), refs.size());
}

TEST(EventScheduler, RejectsPastScheduling) {
  EventScheduler sched;
  sched.schedule_at(SimTime::milliseconds(5), [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(SimTime::milliseconds(1), [] {}), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(r.uniform_int(5, 5), 5u);
  EXPECT_THROW(r.uniform_int(6, 5), std::invalid_argument);
}

TEST(Rng, BernoulliEdges) {
  Rng r(9);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, GeometricMean) {
  Rng r(15);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(0.25));
  // mean of geometric (failures before success) = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
  EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, ParetoMinimum) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent2(21);
  (void)parent2.next_u64();  // same position as parent after fork
  EXPECT_NE(child.next_u64(), parent2.next_u64());
}

TEST(Logger, RespectsLevelAndSink) {
  std::vector<std::string> lines;
  Logger::set_sink([&](const std::string& s) { lines.push_back(s); });
  Logger::set_level(LogLevel::kWarn);
  Logger::log(LogLevel::kInfo, SimTime::zero(), "c", "dropped");
  Logger::log(LogLevel::kError, SimTime::milliseconds(1), "c", "kept");
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("kept"), std::string::npos);
  Logger::set_level(LogLevel::kOff);
  Logger::set_sink(nullptr);
}

}  // namespace
}  // namespace adaptive::sim
