// Tests for the STREAMS-style composition substrate and the UNITES
// metric-specification language, plus the remaining extension features
// (message-oriented delivery, in-handshake negotiation).
#include "adaptive/world.hpp"
#include "tko/streams.hpp"
#include "unites/spec_language.hpp"

#include <gtest/gtest.h>

namespace adaptive {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

// ---------------------------------------------------------------------------
// STREAMS
// ---------------------------------------------------------------------------

TEST(Streams, EmptyStackIsPassThrough) {
  std::vector<std::uint8_t> tx;
  std::vector<std::uint8_t> rx;
  tko::Stream stream([&](tko::Message&& m) { tx = m.linearize(); });
  stream.set_read_handler([&](tko::Message&& m) { rx = m.linearize(); });

  stream.write(tko::Message::from_bytes(bytes_of({1, 2, 3})));
  EXPECT_EQ(tx, bytes_of({1, 2, 3}));
  stream.inject_from_driver(tko::Message::from_bytes(bytes_of({4, 5})));
  EXPECT_EQ(rx, bytes_of({4, 5}));
}

TEST(Streams, ModulesTransformBothDirections) {
  std::vector<std::uint8_t> tx;
  std::vector<std::uint8_t> rx;
  tko::Stream stream([&](tko::Message&& m) { tx = m.linearize(); });
  stream.set_read_handler([&](tko::Message&& m) { rx = m.linearize(); });

  // A module that prepends 0xAA going down and strips one byte going up.
  stream.push(std::make_unique<tko::LambdaModule>(
      "marker",
      [](tko::Message&& m) {
        const std::uint8_t h[1] = {0xAA};
        m.push(h);
        return std::optional<tko::Message>(std::move(m));
      },
      [](tko::Message&& m) {
        (void)m.pop(1);
        return std::optional<tko::Message>(std::move(m));
      }));

  stream.write(tko::Message::from_bytes(bytes_of({7})));
  EXPECT_EQ(tx, bytes_of({0xAA, 7}));
  stream.inject_from_driver(tko::Message::from_bytes(bytes_of({0xAA, 9})));
  EXPECT_EQ(rx, bytes_of({9}));
}

TEST(Streams, PushPopReconfiguresLive) {
  std::vector<std::size_t> tx_sizes;
  tko::Stream stream([&](tko::Message&& m) { tx_sizes.push_back(m.size()); });

  auto pad = [](tko::Message&& m) {
    const std::uint8_t h[4] = {0, 0, 0, 0};
    m.push(h);
    return std::optional<tko::Message>(std::move(m));
  };
  stream.push(std::make_unique<tko::LambdaModule>("pad4", pad, nullptr));
  stream.write(tko::Message::from_bytes(bytes_of({1})));
  EXPECT_EQ(tx_sizes.back(), 5u);

  stream.push(std::make_unique<tko::LambdaModule>("pad4b", pad, nullptr));
  EXPECT_EQ(stream.depth(), 2u);
  EXPECT_EQ(stream.describe(), (std::vector<std::string>{"pad4b", "pad4"}));
  stream.write(tko::Message::from_bytes(bytes_of({1})));
  EXPECT_EQ(tx_sizes.back(), 9u);

  auto popped = stream.pop();  // removes pad4b (nearest the head)
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->name(), "pad4b");
  stream.write(tko::Message::from_bytes(bytes_of({1})));
  EXPECT_EQ(tx_sizes.back(), 5u);
  EXPECT_NE(stream.find("pad4"), nullptr);
  EXPECT_EQ(stream.find("pad4b"), nullptr);
}

TEST(Streams, ModulesCanAbsorbMessages) {
  int delivered = 0;
  tko::Stream stream([&](tko::Message&&) { ++delivered; });
  stream.push(std::make_unique<tko::LambdaModule>(
      "drop-odd-sized",
      [](tko::Message&& m) {
        return m.size() % 2 == 1 ? std::nullopt : std::optional<tko::Message>(std::move(m));
      },
      nullptr));
  stream.write(tko::Message::from_bytes(bytes_of({1})));        // absorbed
  stream.write(tko::Message::from_bytes(bytes_of({1, 2})));     // passes
  EXPECT_EQ(delivered, 1);
}

TEST(Streams, PduFramingRoundTripAndCorruptionDrop) {
  // Two stream stacks joined back to back: A's driver feeds B's read side.
  std::vector<std::vector<std::uint8_t>> received;
  std::vector<std::uint8_t> wire;
  tko::Stream b([](tko::Message&&) {});
  b.set_read_handler([&](tko::Message&& m) { received.push_back(m.linearize()); });
  auto& b_framing = static_cast<tko::PduFramingModule&>(b.push(
      std::make_unique<tko::PduFramingModule>(tko::ChecksumKind::kCrc32,
                                              tko::ChecksumPlacement::kTrailer)));

  tko::Stream a([&](tko::Message&& m) {
    wire = m.linearize();
    b.inject_from_driver(tko::Message::from_bytes(wire));
  });
  a.push(std::make_unique<tko::PduFramingModule>(tko::ChecksumKind::kCrc32,
                                                 tko::ChecksumPlacement::kTrailer));

  a.write(tko::Message::from_bytes(bytes_of({10, 20, 30})));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], bytes_of({10, 20, 30}));

  // Corrupt the captured wire image and replay it: the framing module
  // must absorb it.
  wire[tko::kPduHeaderBytes + 1] ^= 0x40;
  b.inject_from_driver(tko::Message::from_bytes(wire));
  EXPECT_EQ(received.size(), 1u);
  EXPECT_EQ(b_framing.corrupted_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Metric specification language
// ---------------------------------------------------------------------------

TEST(SpecLanguage, ParsesCollectAndReport) {
  const char* text = R"(
    # collect whitebox metrics
    collect pdu.* every 50ms
    collect connection.*
    report mean, p95 of latency.ns
    report sum of reliability.timeout
  )";
  std::vector<std::string> errors;
  const auto program = unites::parse_metric_spec(text, &errors);
  ASSERT_TRUE(program.has_value()) << (errors.empty() ? "" : errors[0]);
  EXPECT_TRUE(program->measurement.whitebox);
  ASSERT_EQ(program->measurement.filter.size(), 2u);
  EXPECT_EQ(program->measurement.filter[0], "pdu.");
  EXPECT_EQ(program->measurement.sampling_period, sim::SimTime::milliseconds(50));
  ASSERT_EQ(program->reports.size(), 2u);
  EXPECT_EQ(program->reports[0].stats, (std::vector<std::string>{"mean", "p95"}));
  EXPECT_EQ(program->reports[0].metric, "latency.ns");
}

TEST(SpecLanguage, WildcardCollectsEverything) {
  const auto program = unites::parse_metric_spec("collect *");
  ASSERT_TRUE(program.has_value());
  EXPECT_TRUE(program->measurement.whitebox);
  EXPECT_TRUE(program->measurement.filter.empty());
}

TEST(SpecLanguage, RejectsBadStatements) {
  std::vector<std::string> errors;
  EXPECT_FALSE(unites::parse_metric_spec("gather pdu.*", &errors).has_value());
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("line 1"), std::string::npos);

  errors.clear();
  EXPECT_FALSE(unites::parse_metric_spec("report wibble of x", &errors).has_value());
  EXPECT_NE(errors[0].find("wibble"), std::string::npos);

  errors.clear();
  EXPECT_FALSE(unites::parse_metric_spec("collect x every fast", &errors).has_value());
  EXPECT_FALSE(unites::parse_metric_spec("report mean x", &errors).has_value());
}

TEST(SpecLanguage, EndToEndAgainstLiveSession) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 91); });
  const auto program = unites::parse_metric_spec(R"(
    collect pdu.* every 20ms
    report sum of pdu.sent
    report count of pdu.received
    report rate of data.delivered_bytes
  )");
  ASSERT_TRUE(program.has_value());

  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  world.transport(1).set_acceptor(
      [](tko::TransportSession& s) { s.set_deliver([](tko::Message&&) {}); });
  unites::SessionCollector collector(world.repository(), session, program->measurement);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(20'000, 3),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(2));

  const auto report = unites::run_reports(*program, world.repository(),
                                          world.host(0).node_id(), session.id());
  EXPECT_NE(report.find("pdu.sent"), std::string::npos);
  EXPECT_NE(report.find("sum"), std::string::npos);
  // The filter admits pdu.* only, so delivered_bytes has no samples.
  EXPECT_NE(report.find("(no samples)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Message-oriented delivery (TSDU boundaries)
// ---------------------------------------------------------------------------

TEST(MessageMode, LargeUnitsReassembleAcrossSegments) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 92); });
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.connection = tko::sa::ConnectionScheme::kImplicit;
  cfg.segment_bytes = 512;
  cfg.message_oriented = true;

  std::vector<std::vector<std::uint8_t>> messages;
  world.transport(1).set_acceptor([&](tko::TransportSession& s) {
    s.set_deliver([&](tko::Message&& m) { messages.push_back(m.linearize()); });
  });
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);

  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> unit(1000 + i * 700);
    for (std::size_t j = 0; j < unit.size(); ++j) {
      unit[j] = static_cast<std::uint8_t>(j * 7 + i);
    }
    sent.push_back(unit);
    session.send(tko::Message::from_bytes(unit, &world.host(0).buffers()));
  }
  world.run_for(sim::SimTime::seconds(2));

  // Each application message arrives whole, in order, byte-exact —
  // despite every one spanning multiple 512-byte segments.
  ASSERT_EQ(messages.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(messages[i], sent[i]);
}

TEST(MessageMode, ValidatorRequiresOrderedReliable) {
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.message_oriented = true;
  EXPECT_TRUE(tko::sa::Synthesizer::validate(cfg).empty());
  cfg.ordered_delivery = false;
  EXPECT_FALSE(tko::sa::Synthesizer::validate(cfg).empty());
  cfg.ordered_delivery = true;
  cfg.recovery = tko::sa::RecoveryScheme::kNone;
  cfg.ack = tko::sa::AckScheme::kNone;
  cfg.transmission = tko::sa::TransmissionScheme::kUnlimited;
  EXPECT_FALSE(tko::sa::Synthesizer::validate(cfg).empty());
}

TEST(MessageMode, SurvivesConfigWireRoundTrip) {
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.message_oriented = true;
  const auto back = tko::sa::SessionConfig::deserialize(cfg.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->message_oriented);
  EXPECT_EQ(*back, cfg);
}

// ---------------------------------------------------------------------------
// In-handshake negotiation (SYNACK counter-proposal)
// ---------------------------------------------------------------------------

TEST(HandshakeNegotiation, SynackCounterProposalAdoptedByActiveSide) {
  mantts::ResourceLimits tight;
  tight.max_window_pdus = 4;
  tight.max_segment_bytes = 256;
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 93); },
              os::CpuConfig{}, tight);

  // Open directly at the transport (no out-of-band negotiation): the
  // responder's MANTTS-installed admission clamps the SYN-carried config
  // and the SYNACK carries the counter-proposal back.
  auto cfg = tko::sa::reliable_bulk_config();
  cfg.window_pdus = 64;
  cfg.segment_bytes = 4096;
  auto& session = world.transport(0).open({world.transport_address(1)}, cfg);
  session.connect();
  world.run_for(sim::SimTime::seconds(1));

  ASSERT_EQ(session.state(), tko::SessionState::kEstablished);
  EXPECT_EQ(session.config().window_pdus, 4);
  EXPECT_EQ(session.config().segment_bytes, 256u);
  auto* passive = world.transport(1).find_session(session.id());
  ASSERT_NE(passive, nullptr);
  EXPECT_EQ(passive->config().window_pdus, 4);

  // And the clamped session still moves data correctly.
  std::size_t got = 0;
  passive->set_deliver([&](tko::Message&& m) { got += m.size(); });
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(10'000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(2));
  EXPECT_EQ(got, 10'000u);
}

}  // namespace
}  // namespace adaptive
