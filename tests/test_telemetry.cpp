// Resource telemetry suite (DESIGN §12): buffer-pool copy/alloc/memory
// accounting, the MetricClass::kResource taxonomy and unit-suffix
// discipline, ResourceSnapshot capture + repository recording, the
// time-series Sampler determinism contract (jobs=1 and jobs=8 timelines
// byte-identical over a 64-seed sweep), and the bench_diff regression
// library (report parsing, tolerance bands, out-of-band detection).
#include "adaptive/sweep.hpp"
#include "os/buffer_pool.hpp"
#include "unites/metric.hpp"
#include "unites/regression.hpp"
#include "unites/resource.hpp"
#include "unites/sampler.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// Buffer-pool accounting
// ---------------------------------------------------------------------------

TEST(PoolAccounting, AllocateFreeLiveAndHighWater) {
  os::BufferPool pool(os::BufferScheme::kVariableSize);
  os::BufferRef a = pool.allocate(1000);
  os::BufferRef b = pool.allocate(2000);
  {
    const auto& s = pool.stats();
    EXPECT_EQ(s.allocations, 2u);
    EXPECT_EQ(s.allocated_bytes, 3000u);
    EXPECT_EQ(s.frees, 0u);
    EXPECT_EQ(s.live_bytes, 3000u);
    EXPECT_EQ(s.high_water_bytes, 3000u);
  }

  a.reset();
  {
    const auto& s = pool.stats();
    EXPECT_EQ(s.frees, 1u);
    EXPECT_EQ(s.freed_bytes, 1000u);
    EXPECT_EQ(s.live_bytes, 2000u);
    EXPECT_EQ(s.high_water_bytes, 3000u);  // the peak does not come back down
  }

  // Allocating below the peak moves the gauge, not the high-water mark.
  os::BufferRef c = pool.allocate(500);
  EXPECT_EQ(pool.live_bytes(), 2500u);
  EXPECT_EQ(pool.stats().high_water_bytes, 3000u);
  b.reset();
  c.reset();
  EXPECT_EQ(pool.live_bytes(), 0u);
  EXPECT_EQ(pool.stats().frees, 3u);
}

TEST(PoolAccounting, FixedSchemeRoundsUpAndCountsWaste) {
  os::BufferPool pool(os::BufferScheme::kFixedSize, 1024);
  os::BufferRef a = pool.allocate(100);
  const auto& s = pool.stats();
  EXPECT_EQ(s.allocated_bytes, 1024u);
  EXPECT_EQ(s.wasted_bytes, 924u);
  a.reset();
  EXPECT_EQ(pool.stats().freed_bytes, 1024u);  // frees return the rounded size
  EXPECT_EQ(pool.live_bytes(), 0u);
}

TEST(PoolAccounting, CopyCountersAccumulate) {
  os::BufferPool pool;
  pool.record_copy(128);
  pool.record_copy(64);
  EXPECT_EQ(pool.stats().copies, 2u);
  EXPECT_EQ(pool.stats().copied_bytes, 192u);
}

TEST(PoolAccounting, BufferOutlivingItsPoolFreesSafely) {
  // The free-side ledger is shared-ptr-owned by every outstanding
  // BufferRef, so dropping the ref after the pool is gone must not touch
  // freed memory (ASan validates the claim).
  os::BufferRef survivor;
  {
    os::BufferPool pool;
    survivor = pool.allocate(256);
  }
  survivor.reset();
}

TEST(PoolAccounting, ResetStatsKeepsLiveBytesAndRestartsTheHighWater) {
  os::BufferPool pool;
  os::BufferRef keep = pool.allocate(1000);
  pool.allocate(2000).reset();  // transient peak of 3000
  EXPECT_EQ(pool.stats().high_water_bytes, 3000u);

  pool.reset_stats();
  {
    const auto& s = pool.stats();
    EXPECT_EQ(s.allocations, 0u);
    EXPECT_EQ(s.frees, 0u);
    EXPECT_EQ(s.live_bytes, 1000u);        // the live set survives the reset
    EXPECT_EQ(s.high_water_bytes, 1000u);  // peak restarts from it
  }

  os::BufferRef more = pool.allocate(500);
  EXPECT_EQ(pool.live_bytes(), 1500u);
  EXPECT_EQ(pool.stats().high_water_bytes, 1500u);
  keep.reset();
  EXPECT_EQ(pool.live_bytes(), 500u);
  more.reset();
  EXPECT_EQ(pool.live_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Metric taxonomy and unit-suffix discipline
// ---------------------------------------------------------------------------

TEST(MetricTaxonomy, MemPrefixIsTheResourceClass) {
  EXPECT_EQ(unites::classify_metric("mem.pool_live_bytes"), unites::MetricClass::kResource);
  EXPECT_EQ(unites::classify_metric("mem.session_live_bytes"), unites::MetricClass::kResource);
  EXPECT_EQ(unites::classify_metric("latency.ns"), unites::MetricClass::kBlackbox);
  EXPECT_EQ(unites::classify_metric("reliability.retransmissions"),
            unites::MetricClass::kWhitebox);
  EXPECT_STREQ(unites::metric_class_name(unites::MetricClass::kResource), "resource");
  EXPECT_STREQ(unites::metric_class_name(unites::MetricClass::kBlackbox), "blackbox");
  EXPECT_STREQ(unites::metric_class_name(unites::MetricClass::kWhitebox), "whitebox");
}

TEST(MetricTaxonomy, UnitSuffixDiscipline) {
  EXPECT_EQ(unites::metric_unit("mem.pool_live_bytes"), "bytes");
  EXPECT_EQ(unites::metric_unit("msg.queue_ns"), "ns");
  EXPECT_EQ(unites::metric_unit("latency.ns"), "ns");  // sanctioned legacy name
  EXPECT_EQ(unites::metric_unit("throughput.bps"), "bps");
  EXPECT_EQ(unites::metric_unit("buffer.copies"), "");

  EXPECT_TRUE(unites::unit_suffix_ok("mem.pool_high_water_bytes"));
  EXPECT_TRUE(unites::unit_suffix_ok("watchdog.recovery_ns"));
  EXPECT_TRUE(unites::unit_suffix_ok("buffer.copies"));
  EXPECT_TRUE(unites::unit_suffix_ok("latency.ns"));
  // Unit-like tokens without the canonical suffix are rejected.
  EXPECT_FALSE(unites::unit_suffix_ok("mem.bytes_live"));
  EXPECT_FALSE(unites::unit_suffix_ok("pdu.byte_count"));
  EXPECT_FALSE(unites::unit_suffix_ok("setup.duration_ms"));
  EXPECT_FALSE(unites::unit_suffix_ok("queue.wait_us"));
  EXPECT_FALSE(unites::unit_suffix_ok("transfer.time_sec"));
  EXPECT_FALSE(unites::unit_suffix_ok("custom.delay.ns"));
}

// ---------------------------------------------------------------------------
// Scenario-backed checks: snapshots, recorded classes, exported names
// ---------------------------------------------------------------------------

/// The test_parallel scenario family: 4-host seeded Ethernet LAN, 1s file
/// transfer — cheap enough for a 64-seed determinism sweep.
SweepConfig sweep_config(std::vector<std::uint64_t> seeds, std::size_t jobs) {
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); };
  };
  sc.base.application = app::Table1App::kFileTransfer;
  sc.base.mode = RunOptions::Mode::kManntts;
  sc.base.duration = sim::SimTime::seconds(1);
  sc.base.drain = sim::SimTime::seconds(1);
  sc.base.scale = 0.3;
  sc.base.collect_metrics = true;
  sc.seeds = std::move(seeds);
  sc.jobs = jobs;
  return sc;
}

std::vector<std::uint64_t> seed_range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; ++s) out.push_back(s);
  return out;
}

TEST(ResourcePlane, ScenarioSnapshotCapturesPoolsAndSessions) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, 7); });
  RunOptions opt;
  opt.application = app::Table1App::kFileTransfer;
  opt.mode = RunOptions::Mode::kManntts;
  opt.duration = sim::SimTime::seconds(1);
  opt.drain = sim::SimTime::seconds(1);
  opt.scale = 0.3;
  opt.seed = 7;
  opt.collect_metrics = true;
  const RunOutcome out = run_scenario(world, opt);

  // The harvest snapshot was taken while sessions were still open.
  EXPECT_EQ(out.resource.hosts.size(), world.host_count());
  EXPECT_GE(out.resource.sessions.size(), 2u);  // sender + receiver side
  EXPECT_GT(out.resource.total_allocations(), 0u);
  EXPECT_GT(out.resource.total_copies(), 0u);
  EXPECT_GT(out.resource.pool_high_water_bytes(), 0u);
  EXPECT_GT(out.resource.session_high_water_bytes(), 0u);

  // record_into landed the figures under the resource class.
  const unites::MetricKey pool_key{out.resource.hosts.front().host, 0,
                                  unites::metrics::kPoolAllocatedBytes};
  ASSERT_NE(world.repository().series(pool_key), nullptr);
  EXPECT_EQ(world.repository().metric_class(pool_key), unites::MetricClass::kResource);
  EXPECT_GT(world.repository().systemwide_sum(unites::metrics::kSessionHighWaterBytes), 0.0);
}

TEST(ResourcePlane, SnapshotJsonIsWellFormedEnoughForBundles) {
  unites::ResourceSnapshot snap;
  snap.when = sim::SimTime::seconds(3);
  unites::HostPoolResource h;
  h.host = 4;
  h.pool.allocations = 10;
  h.pool.allocated_bytes = 5120;
  snap.hosts.push_back(h);
  snap.sessions.push_back(unites::SessionResource{4, 2, 100, 900});
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"hosts\""), std::string::npos);
  EXPECT_NE(json.find("\"sessions\""), std::string::npos);
  EXPECT_NE(json.find("\"allocated_bytes\":5120"), std::string::npos);
  EXPECT_NE(json.find("\"high_water_bytes\":900"), std::string::npos);
}

TEST(ResourcePlane, EveryExportedMetricNameCarriesItsUnitSuffix) {
  // The exporter-consistency satellite: whatever names instrumentation
  // actually emits over a full adaptive run must pass the suffix check, so
  // a new metric with "duration_ms" or a bare "bytes" never ships.
  SweepConfig sc = sweep_config(seed_range(1, 4), 2);
  sc.capture_spans = true;  // include the msg.* breakdown names
  const SweepResult res = run_sweep(sc);
  ASSERT_GT(res.merged.series_count(), 0u);
  for (const auto& key : res.merged.keys()) {
    EXPECT_TRUE(unites::unit_suffix_ok(key.name)) << "metric name: " << key.name;
  }
}

// ---------------------------------------------------------------------------
// Sampler determinism
// ---------------------------------------------------------------------------

TEST(SamplerDeterminism, TimelinesAreByteIdenticalAcrossJobCounts) {
  const auto run = [](std::size_t jobs) {
    SweepConfig sc = sweep_config(seed_range(1, 64), jobs);
    sc.capture_timeline = true;
    sc.timeline_period = sim::SimTime::milliseconds(100);
    const SweepResult res = run_sweep(sc);
    std::ostringstream jsonl, chrome;
    unites::write_timeline_jsonl(jsonl, res.timeline);
    unites::write_timeline_chrome(chrome, res.timeline);
    return std::make_pair(jsonl.str(), chrome.str());
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_FALSE(serial.first.empty());
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(SamplerDeterminism, PeriodLongerThanScenarioStillYieldsTheHarvestSample) {
  SweepConfig sc = sweep_config({1}, 1);
  sc.capture_timeline = true;
  sc.timeline_period = sim::SimTime::seconds(60);  // longer than duration+drain
  const SweepResult res = run_sweep(sc);
  ASSERT_FALSE(res.timeline.empty());
  // Exactly one snapshot: every point carries the same (harvest) timestamp.
  for (const auto& p : res.timeline) {
    EXPECT_EQ(p.when, res.timeline.front().when);
    EXPECT_EQ(p.seed, 1u);
  }
}

TEST(SamplerDeterminism, NoCaptureMeansNoTimeline) {
  SweepConfig sc = sweep_config({1, 2}, 2);
  const SweepResult res = run_sweep(sc);
  EXPECT_TRUE(res.timeline.empty());
}

TEST(SamplerDeterminism, SampleNowOutsideTheScheduleCountsSnapshots) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, 3); });
  unites::Sampler::Config cfg;
  cfg.period = sim::SimTime::zero();  // no periodic schedule at all
  unites::Sampler sampler(world.host(0).timers(), cfg,
                          [&world] { return world.resource_snapshot(); });
  EXPECT_EQ(sampler.samples_taken(), 0u);
  sampler.sample_now();
  sampler.sample_now();
  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_FALSE(sampler.timeline().empty());
  sampler.cancel();
}

// ---------------------------------------------------------------------------
// bench_diff regression library
// ---------------------------------------------------------------------------

constexpr const char* kBaselineJson = R"({
  "bench": "fig1_endtoend",
  "scalars": {"units.sent": 123, "wall_seconds": 4.5},
  "trajectory": {"mem.bytes_per_session": 260752, "os.copies_per_msg": 10.878},
  "distributions": {"latency.ns": {"count": 123, "p99": 3.0e9}}
})";

TEST(BenchDiff, ParserFlattensNumericLeavesToDottedKeys) {
  const auto rep = unites::parse_bench_report(kBaselineJson);
  EXPECT_EQ(rep.bench, "fig1_endtoend");
  EXPECT_DOUBLE_EQ(rep.values.at("scalars.units.sent"), 123.0);
  EXPECT_DOUBLE_EQ(rep.values.at("trajectory.os.copies_per_msg"), 10.878);
  EXPECT_DOUBLE_EQ(rep.values.at("distributions.latency.ns.p99"), 3.0e9);
  const auto traj = rep.section("trajectory");
  EXPECT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj.at("mem.bytes_per_session"), 260752.0);
}

TEST(BenchDiff, ParserRejectsMalformedJson) {
  EXPECT_THROW((void)unites::parse_bench_report("{\"bench\":"), std::runtime_error);
  EXPECT_THROW((void)unites::parse_bench_report("not json at all"), std::runtime_error);
}

TEST(BenchDiff, ToleranceRulesLongestMatchWinsAndMinusOneIgnores) {
  const auto tol = unites::ToleranceSpec::parse(
      "# comment line\n"
      "trajectory.* 0.2\n"
      "trajectory.mem.bytes_per_session 0.01\n"
      "scalars.wall* -1\n",
      0.05);
  EXPECT_DOUBLE_EQ(tol.tol_for("trajectory.os.copies_per_msg"), 0.2);
  EXPECT_DOUBLE_EQ(tol.tol_for("trajectory.mem.bytes_per_session"), 0.01);
  EXPECT_DOUBLE_EQ(tol.tol_for("scalars.wall_seconds"), -1.0);
  EXPECT_DOUBLE_EQ(tol.tol_for("scalars.units.sent"), 0.05);
}

TEST(BenchDiff, WithinToleranceIsOkOutOfBandAndMissingFail) {
  const auto baseline = unites::parse_bench_report(kBaselineJson);
  unites::ToleranceSpec tol;
  tol.default_rel_tol = 0.05;

  // 2% drift on one key, identical on the other: passes.
  const auto good = unites::parse_bench_report(R"({
    "bench": "fig1_endtoend",
    "trajectory": {"mem.bytes_per_session": 265967, "os.copies_per_msg": 10.878}
  })");
  EXPECT_TRUE(unites::diff_reports(baseline, good, tol, "trajectory.").ok);

  // 10x on one key: out of band.
  const auto blown = unites::parse_bench_report(R"({
    "bench": "fig1_endtoend",
    "trajectory": {"mem.bytes_per_session": 2607520, "os.copies_per_msg": 10.878}
  })");
  const auto d1 = unites::diff_reports(baseline, blown, tol, "trajectory.");
  EXPECT_FALSE(d1.ok);
  EXPECT_NE(unites::render_diff(d1).find("FAIL"), std::string::npos);

  // Key disappeared from the candidate: also a failure.
  const auto partial = unites::parse_bench_report(R"({
    "bench": "fig1_endtoend",
    "trajectory": {"mem.bytes_per_session": 260752}
  })");
  const auto d2 = unites::diff_reports(baseline, partial, tol, "trajectory.");
  EXPECT_FALSE(d2.ok);

  // A new candidate-only key is informational, not a failure.
  const auto extra = unites::parse_bench_report(R"({
    "bench": "fig1_endtoend",
    "trajectory": {"mem.bytes_per_session": 260752, "os.copies_per_msg": 10.878,
                   "mem.new_gauge_bytes": 1}
  })");
  const auto d3 = unites::diff_reports(baseline, extra, tol, "trajectory.");
  EXPECT_TRUE(d3.ok);
  ASSERT_EQ(d3.added.size(), 1u);
  EXPECT_EQ(d3.added.front(), "trajectory.mem.new_gauge_bytes");
}

TEST(BenchDiff, ZeroBaselineTreatsAnyDriftAsOutOfBand) {
  const auto baseline = unites::parse_bench_report(
      R"({"bench": "x", "trajectory": {"violations": 0}})");
  const auto clean = unites::parse_bench_report(
      R"({"bench": "x", "trajectory": {"violations": 0}})");
  const auto dirty = unites::parse_bench_report(
      R"({"bench": "x", "trajectory": {"violations": 2}})");
  unites::ToleranceSpec tol;
  EXPECT_TRUE(unites::diff_reports(baseline, clean, tol, "trajectory.").ok);
  EXPECT_FALSE(unites::diff_reports(baseline, dirty, tol, "trajectory.").ok);
}

}  // namespace
}  // namespace adaptive
