// End-to-end integration tests: ADAPTIVE transport sessions over the
// simulated network — connection schemes, loss recovery, multicast,
// close semantics, and live reconfiguration.
#include "net/topologies.hpp"
#include "os/host.hpp"
#include "tko/sa/templates.hpp"
#include "tko/transport.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace adaptive::tko {
namespace {

using sa::SessionConfig;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt = 0) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 31 + salt);
  return out;
}

class Collector {
public:
  void attach(Session& s) {
    s.set_deliver([this](Message&& m) {
      auto b = m.linearize();
      bytes_ += b.size();
      messages_.push_back(std::move(b));
    });
  }
  [[nodiscard]] std::size_t total_bytes() const { return bytes_; }
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& messages() const {
    return messages_;
  }
  [[nodiscard]] std::vector<std::uint8_t> concatenated() const {
    std::vector<std::uint8_t> all;
    for (const auto& m : messages_) all.insert(all.end(), m.begin(), m.end());
    return all;
  }

private:
  std::size_t bytes_ = 0;
  std::vector<std::vector<std::uint8_t>> messages_;
};

class TransportFixture : public ::testing::Test {
protected:
  void rebuild(net::Topology t) {
    // Transports unbind host ports on destruction: destroy them first.
    transports.clear();
    hosts.clear();
    accepted.clear();
    build(std::move(t));
  }

  void build(net::Topology topo) {
    this->topo = std::move(topo);
    for (const auto h : this->topo.hosts) {
      hosts.push_back(std::make_unique<os::Host>(*this->topo.network, h));
      transports.push_back(std::make_unique<AdaptiveTransport>(*hosts.back()));
    }
    for (auto& t : transports) {
      t->set_acceptor([this](TransportSession& s) {
        accepted.push_back(&s);
        collector.attach(s);
      });
    }
  }

  void SetUp() override { build(net::make_ethernet_lan(sched, 4, /*seed=*/77)); }

  TransportSession& open(std::size_t from, std::size_t to, const SessionConfig& cfg) {
    return transports[from]->open({{hosts[to]->node_id(), kTransportPort}}, cfg);
  }

  void run_for(double seconds) { sched.run_until(sched.now() + sim::SimTime::seconds(seconds)); }

  sim::EventScheduler sched;
  net::Topology topo;
  std::vector<std::unique_ptr<os::Host>> hosts;
  std::vector<std::unique_ptr<AdaptiveTransport>> transports;
  std::vector<TransportSession*> accepted;
  Collector collector;
};

TEST_F(TransportFixture, ImplicitSessionDeliversFirstMessageWithoutHandshake) {
  auto& s = open(0, 1, sa::udp_compat_config());
  s.send(Message::from_bytes(pattern(500), &hosts[0]->buffers()));
  run_for(0.1);
  ASSERT_EQ(accepted.size(), 1u);
  ASSERT_EQ(collector.messages().size(), 1u);
  EXPECT_EQ(collector.messages()[0], pattern(500));
  // No SYN/SYNACK ever crossed the wire.
  EXPECT_EQ(s.stats().pdus_sent, 1u);
  EXPECT_EQ(s.state(), SessionState::kEstablished);
}

TEST_F(TransportFixture, Explicit3WayEstablishesBeforeData) {
  auto& s = open(0, 1, sa::tcp_compat_config());
  std::vector<SessionState> states;
  s.set_on_state([&](SessionState st) { states.push_back(st); });
  s.connect();
  EXPECT_EQ(s.state(), SessionState::kConnecting);
  run_for(0.1);
  EXPECT_EQ(s.state(), SessionState::kEstablished);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0]->state(), SessionState::kEstablished);
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.back(), SessionState::kEstablished);
  // Handshake-only traffic so far: SYN + HSACK from active side.
  EXPECT_EQ(s.stats().pdus_sent, 2u);
}

TEST_F(TransportFixture, DataQueuedBeforeEstablishFlowsAfter) {
  auto& s = open(0, 1, sa::tcp_compat_config());
  s.send(Message::from_bytes(pattern(2000), &hosts[0]->buffers()));
  run_for(0.5);
  EXPECT_EQ(collector.total_bytes(), 2000u);
  EXPECT_EQ(collector.concatenated(), pattern(2000));
}

TEST_F(TransportFixture, LargeTransferSegmentsAndReassemblesInOrder) {
  auto cfg = sa::reliable_bulk_config();
  auto& s = open(0, 1, cfg);
  const auto data = pattern(50'000, 3);
  s.send(Message::from_bytes(data, &hosts[0]->buffers()));
  run_for(2.0);
  EXPECT_EQ(collector.total_bytes(), data.size());
  EXPECT_EQ(collector.concatenated(), data);
  EXPECT_GT(s.stats().pdus_sent, 40u);  // definitely segmented
}

TEST_F(TransportFixture, PeerWindowLimitsInFlight) {
  auto cfg = sa::reliable_bulk_config();
  cfg.window_pdus = 2;  // tiny window: transfer still completes
  auto& s = open(0, 1, cfg);
  s.send(Message::from_bytes(pattern(20'000), &hosts[0]->buffers()));
  run_for(2.0);
  EXPECT_EQ(collector.total_bytes(), 20'000u);
}

TEST_F(TransportFixture, GracefulCloseDrainsThenCloses) {
  auto& s = open(0, 1, sa::reliable_bulk_config());
  s.send(Message::from_bytes(pattern(10'000), &hosts[0]->buffers()));
  s.close(/*graceful=*/true);
  run_for(2.0);
  EXPECT_EQ(collector.total_bytes(), 10'000u);  // nothing lost by closing
  EXPECT_EQ(s.state(), SessionState::kClosed);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0]->state(), SessionState::kClosed);
}

TEST_F(TransportFixture, AbortiveCloseIsImmediateAndLossy) {
  auto cfg = sa::reliable_bulk_config();
  cfg.window_pdus = 8;  // most of the transfer is still queued at abort
  auto& s = open(0, 1, cfg);
  s.send(Message::from_bytes(pattern(100'000), &hosts[0]->buffers()));
  run_for(0.002);
  s.close(/*graceful=*/false);
  run_for(0.5);
  EXPECT_EQ(s.state(), SessionState::kAborted);
  EXPECT_LT(collector.total_bytes(), 100'000u);
}

class LossyPathFixture : public TransportFixture {
protected:
  void SetUp() override {
    // Two hosts joined by a congested, errored WAN: both queue-overflow
    // losses (under load) and bit errors occur.
    build(net::make_congested_wan(sched, 1, /*seed=*/11));
  }
};

TEST_F(LossyPathFixture, SelectiveRepeatDeliversEverythingDespiteErrors) {
  auto cfg = sa::reliable_bulk_config();
  cfg.window_pdus = 8;
  auto& s = open(0, 1, cfg);
  const auto data = pattern(60'000, 9);
  s.send(Message::from_bytes(data, &hosts[0]->buffers()));
  sched.run_until(sim::SimTime::seconds(20));
  EXPECT_EQ(collector.total_bytes(), data.size());
  EXPECT_EQ(collector.concatenated(), data);
  const auto& rel = s.context().reliability();
  EXPECT_GT(rel.stats().retransmissions + s.stats().checksum_failures +
                accepted.front()->stats().checksum_failures,
            0u)
      << "path was supposed to be lossy";
}

TEST_F(LossyPathFixture, GoBackNAlsoDeliversEverything) {
  auto cfg = sa::tcp_compat_config();
  cfg.window_pdus = 8;
  auto& s = open(0, 1, cfg);
  const auto data = pattern(60'000, 4);
  s.send(Message::from_bytes(data, &hosts[0]->buffers()));
  sched.run_until(sim::SimTime::seconds(30));
  EXPECT_EQ(collector.total_bytes(), data.size());
  EXPECT_EQ(collector.concatenated(), data);
}

TEST_F(LossyPathFixture, NoRecoveryLosesDataOnLossyPath) {
  auto cfg = sa::udp_compat_config();
  cfg.detection = sa::DetectionScheme::kInternet16Trailer;  // drop corrupted
  auto& s = open(0, 1, cfg);
  // Blast enough traffic to overflow the 24-packet backbone queue.
  for (int i = 0; i < 200; ++i) {
    s.send(Message::from_bytes(pattern(1000, static_cast<std::uint8_t>(i)),
                               &hosts[0]->buffers()));
  }
  sched.run_until(sim::SimTime::seconds(10));
  EXPECT_LT(collector.total_bytes(), 200'000u);
  EXPECT_GT(collector.total_bytes(), 0u);
}

TEST_F(LossyPathFixture, FecRecoversWithoutRetransmission) {
  SessionConfig cfg = sa::lightweight_isochronous_config();
  cfg.recovery = sa::RecoveryScheme::kForwardErrorCorrection;
  cfg.fec_group_size = 4;
  cfg.ack = sa::AckScheme::kNone;
  cfg.transmission = sa::TransmissionScheme::kRateControl;
  cfg.inter_pdu_gap = sim::SimTime::milliseconds(8);  // stay under backbone rate
  auto& s = open(0, 1, cfg);
  for (int i = 0; i < 100; ++i) {
    s.send(Message::from_bytes(pattern(600, static_cast<std::uint8_t>(i)),
                               &hosts[0]->buffers()));
  }
  sched.run_until(sim::SimTime::seconds(10));
  ASSERT_FALSE(accepted.empty());
  const auto& rx_rel = accepted.front()->context().reliability();
  EXPECT_GT(collector.messages().size(), 90u);
  // On this BER path some PDU was corrupted and recovered via parity.
  EXPECT_GT(rx_rel.stats().fec_recoveries, 0u);
  EXPECT_EQ(rx_rel.stats().retransmissions, 0u);
}

TEST_F(TransportFixture, MulticastGroupSessionReachesAllMembers) {
  rebuild(net::make_multicast_campus(sched, 6, 3));
  auto& net = *topo.network;
  const net::NodeId g = net.create_group();
  for (std::size_t i = 1; i <= 3; ++i) net.join_group(g, hosts[i]->node_id());

  SessionConfig cfg = sa::udp_compat_config();
  auto& s = transports[0]->open({{g, kTransportPort}}, cfg);
  s.send(Message::from_bytes(pattern(800), &hosts[0]->buffers()));
  run_for(0.5);
  EXPECT_EQ(accepted.size(), 3u);  // one passive session per member
  EXPECT_EQ(collector.messages().size(), 3u);
  for (const auto& m : collector.messages()) EXPECT_EQ(m, pattern(800));
}

TEST_F(TransportFixture, ReliableMulticastWaitsForAllAcks) {
  rebuild(net::make_multicast_campus(sched, 6, 3));
  auto& net = *topo.network;
  const net::NodeId g = net.create_group();
  net.join_group(g, hosts[1]->node_id());
  net.join_group(g, hosts[2]->node_id());

  SessionConfig cfg = sa::tcp_compat_config();
  cfg.connection = sa::ConnectionScheme::kImplicit;  // handshake to a group is 1:N
  auto& s = transports[0]->open({{g, kTransportPort}}, cfg);
  s.send(Message::from_bytes(pattern(5000), &hosts[0]->buffers()));
  run_for(2.0);
  EXPECT_EQ(accepted.size(), 2u);
  EXPECT_EQ(collector.total_bytes(), 10'000u);  // both members got all 5000
  EXPECT_TRUE(s.context().reliability().all_acked());
}

TEST_F(TransportFixture, MultiUnicastFanoutCostsNCopies) {
  // Session with three unicast remotes (the "underweight transport forced
  // to emulate multicast" case): each PDU goes out three times.
  SessionConfig cfg = sa::udp_compat_config();
  auto& s = transports[0]->open({{hosts[1]->node_id(), kTransportPort},
                                 {hosts[2]->node_id(), kTransportPort},
                                 {hosts[3]->node_id(), kTransportPort}},
                                cfg);
  s.send(Message::from_bytes(pattern(400), &hosts[0]->buffers()));
  run_for(0.2);
  EXPECT_EQ(accepted.size(), 3u);
  EXPECT_EQ(collector.messages().size(), 3u);
  EXPECT_EQ(hosts[0]->nic().tx_packets(), 3u);
}

TEST_F(TransportFixture, ReconfigureRecoverySchemeMidStreamLosesNothing) {
  auto cfg = sa::reliable_bulk_config();
  cfg.recovery = sa::RecoveryScheme::kGoBackN;
  auto& s = open(0, 1, cfg);
  const auto part1 = pattern(20'000, 1);
  s.send(Message::from_bytes(part1, &hosts[0]->buffers()));
  run_for(0.01);  // mid-flight

  auto cfg2 = cfg;
  cfg2.recovery = sa::RecoveryScheme::kSelectiveRepeat;
  s.reconfigure(cfg2);
  EXPECT_EQ(s.context().reliability().name(), "selective-repeat");
  EXPECT_EQ(s.context().reconfigurations(), 1u);

  const auto part2 = pattern(20'000, 2);
  s.send(Message::from_bytes(part2, &hosts[0]->buffers()));
  run_for(3.0);
  auto expect = part1;
  expect.insert(expect.end(), part2.begin(), part2.end());
  EXPECT_EQ(collector.total_bytes(), expect.size());
  EXPECT_EQ(collector.concatenated(), expect);
}

TEST_F(TransportFixture, ReconfigureTransmissionToRateControl) {
  auto cfg = sa::reliable_bulk_config();
  auto& s = open(0, 1, cfg);
  s.send(Message::from_bytes(pattern(5000), &hosts[0]->buffers()));
  run_for(0.5);

  auto cfg2 = cfg;
  cfg2.transmission = sa::TransmissionScheme::kWindowAndRate;
  cfg2.inter_pdu_gap = sim::SimTime::milliseconds(2);
  s.reconfigure(cfg2);
  const auto t0 = sched.now();
  const auto sent_before = s.stats().pdus_sent;
  s.send(Message::from_bytes(pattern(10'000), &hosts[0]->buffers()));
  run_for(1.0);
  EXPECT_EQ(collector.total_bytes(), 15'000u);
  // Pacing must have stretched the second transfer: 10 PDUs * 2ms >= 18ms.
  const auto pdus = s.stats().pdus_sent - sent_before;
  EXPECT_GE(pdus, 10u);
  (void)t0;
}

TEST_F(TransportFixture, SessionControlInterface) {
  auto& s = open(0, 1, sa::reliable_bulk_config());
  EXPECT_EQ(*s.control("state"), "idle");
  EXPECT_NE(s.control("config")->find("selective-repeat"), std::string::npos);
  EXPECT_NE(s.control("context")->find("selective-repeat"), std::string::npos);
  EXPECT_TRUE(s.control("mtu").has_value());
  EXPECT_FALSE(s.control("bogus").has_value());
}

TEST_F(TransportFixture, InstrumentationHookSeesWhiteboxMetrics) {
  std::map<std::string, double> metrics;
  auto& s = open(0, 1, sa::reliable_bulk_config());
  s.set_metric_hook([&](std::string_view k, double v) { metrics[std::string(k)] += v; });
  s.send(Message::from_bytes(pattern(5000), &hosts[0]->buffers()));
  run_for(1.0);
  EXPECT_GT(metrics["pdu.sent"], 0.0);
  EXPECT_GT(metrics["pdu.received"], 0.0);
  EXPECT_GT(metrics["connection.setup_ns"], 0.0);
}

TEST_F(TransportFixture, CpuCostScalesWithMechanismWeight) {
  // Same payload over heavyweight (TP4-ish) vs lightweight configs; the
  // heavyweight one must burn more host CPU — the overweight argument.
  auto heavy_cfg = sa::tcp_compat_config();
  heavy_cfg.detection = sa::DetectionScheme::kCrc32Trailer;
  auto& heavy = open(0, 1, heavy_cfg);
  heavy.send(Message::from_bytes(pattern(30'000), &hosts[0]->buffers()));
  run_for(2.0);
  const auto heavy_instr = hosts[0]->cpu().stats().instructions;

  auto light_cfg = sa::udp_compat_config();
  light_cfg.detection = sa::DetectionScheme::kNone;
  auto& light = open(2, 3, light_cfg);
  light.send(Message::from_bytes(pattern(30'000), &hosts[2]->buffers()));
  run_for(2.0);
  const auto light_instr = hosts[2]->cpu().stats().instructions;
  // Per-packet NIC interrupts cost the same either way; the protocol-
  // processing difference still shows through clearly.
  EXPECT_GT(static_cast<double>(heavy_instr), 1.4 * static_cast<double>(light_instr));
}

TEST_F(TransportFixture, BidirectionalRequestResponseOnOneSession) {
  // OLTP-style traffic: the passive side answers over the SAME session —
  // each direction has its own sender/receiver state within the shared
  // reliability mechanism.
  auto cfg = sa::reliable_bulk_config();
  cfg.connection = sa::ConnectionScheme::kImplicit;

  std::vector<std::vector<std::uint8_t>> responses;
  TransportSession* server = nullptr;
  transports[1]->set_acceptor([&](TransportSession& s) {
    server = &s;
    s.set_deliver([&, srv = &s](Message&& m) {
      // Echo each request back, transformed.
      auto bytes = m.linearize();
      for (auto& b : bytes) b = static_cast<std::uint8_t>(b + 1);
      srv->send(Message::from_bytes(bytes, &hosts[1]->buffers()));
    });
  });

  auto& client = transports[0]->open({{hosts[1]->node_id(), kTransportPort}}, cfg);
  client.set_deliver([&](Message&& m) { responses.push_back(m.linearize()); });

  for (int i = 0; i < 20; ++i) {
    client.send(Message::from_bytes(pattern(64, static_cast<std::uint8_t>(i)),
                                    &hosts[0]->buffers()));
  }
  run_for(1.0);

  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    auto expect = pattern(64, static_cast<std::uint8_t>(i));
    for (auto& b : expect) b = static_cast<std::uint8_t>(b + 1);
    EXPECT_EQ(responses[i], expect) << "response " << i;
  }
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->context().reliability().all_acked());
  EXPECT_TRUE(client.context().reliability().all_acked());
}

TEST_F(TransportFixture, OrphanPdusAreCounted) {
  // A packet that decodes to an unknown session with no config attached.
  Pdu p;
  p.type = PduType::kAck;
  p.session_id = 0x12345;
  auto wire =
      encode_pdu(std::move(p), ChecksumKind::kInternet16, ChecksumPlacement::kTrailer);
  net::Packet pkt;
  pkt.src = {hosts[0]->node_id(), kTransportPort};
  pkt.dst = {hosts[1]->node_id(), kTransportPort};
  pkt.payload = std::move(wire);
  hosts[0]->send(std::move(pkt));
  run_for(0.1);
  EXPECT_EQ(transports[1]->orphan_pdus(), 1u);
}

}  // namespace
}  // namespace adaptive::tko
