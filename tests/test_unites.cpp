// Tests for UNITES: repository, analysis, collectors, presentation.
#include "adaptive/world.hpp"
#include "net/topologies.hpp"
#include "tko/sa/templates.hpp"
#include "sim/logging.hpp"
#include "unites/analysis.hpp"
#include "unites/collector.hpp"
#include "unites/export.hpp"
#include "unites/histogram.hpp"
#include "unites/presentation.hpp"
#include "unites/repository.hpp"
#include "unites/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace adaptive::unites {
namespace {

Sample s(double t_ms, double v) { return Sample{sim::SimTime::seconds(t_ms / 1000.0), v}; }

TEST(MetricClassification, BlackboxVsWhitebox) {
  EXPECT_EQ(classify_metric(metrics::kThroughputBps), MetricClass::kBlackbox);
  EXPECT_EQ(classify_metric(metrics::kLatencyNs), MetricClass::kBlackbox);
  EXPECT_EQ(classify_metric(metrics::kRetransmissions), MetricClass::kWhitebox);
  EXPECT_EQ(classify_metric("custom.thing"), MetricClass::kWhitebox);
}

TEST(Repository, RecordAndQuery) {
  MetricRepository repo;
  const MetricKey key{1, 42, "x"};
  repo.record(key, sim::SimTime::milliseconds(1), 10.0);
  repo.record(key, sim::SimTime::milliseconds(2), 20.0);
  const Series* series = repo.series(key);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  const auto sum = repo.summary(key);
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->count, 2u);
  EXPECT_DOUBLE_EQ(sum->sum, 30.0);
  EXPECT_DOUBLE_EQ(sum->min, 10.0);
  EXPECT_DOUBLE_EQ(sum->max, 20.0);
  EXPECT_DOUBLE_EQ(sum->last, 20.0);
  EXPECT_EQ(repo.series(MetricKey{1, 42, "y"}), nullptr);
}

TEST(Repository, KeysFilters) {
  MetricRepository repo;
  repo.record({1, 10, "a"}, sim::SimTime::zero(), 1);
  repo.record({1, 11, "a"}, sim::SimTime::zero(), 1);
  repo.record({2, 10, "a"}, sim::SimTime::zero(), 1);
  EXPECT_EQ(repo.keys().size(), 3u);
  EXPECT_EQ(repo.keys_for_host(1).size(), 2u);
  EXPECT_EQ(repo.keys_for_connection(1, 11).size(), 1u);
  EXPECT_DOUBLE_EQ(repo.systemwide_sum("a"), 3.0);
}

TEST(Repository, CapsSeriesButKeepsSummary) {
  MetricRepository repo(16);
  const MetricKey key{1, 1, "x"};
  for (int i = 0; i < 100; ++i) repo.record(key, sim::SimTime::milliseconds(i), 1.0);
  EXPECT_LE(repo.series(key)->size(), 16u);
  EXPECT_EQ(repo.summary(key)->count, 100u);  // aggregate survives aging
}

TEST(Analysis, BasicStats) {
  Series series = {s(0, 1), s(1, 2), s(2, 3), s(3, 4), s(4, 5)};
  const auto st = analyze(series);
  EXPECT_EQ(st.count, 5u);
  EXPECT_DOUBLE_EQ(st.mean, 3.0);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 5.0);
  EXPECT_DOUBLE_EQ(st.p50, 3.0);
  EXPECT_NEAR(st.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_EQ(analyze({}).count, 0u);
}

TEST(Analysis, Percentiles) {
  Series series;
  for (int i = 1; i <= 100; ++i) series.push_back(s(i, i));
  const auto st = analyze(series);
  EXPECT_NEAR(st.p95, 95.05, 0.5);
  EXPECT_NEAR(st.p99, 99.01, 0.5);
}

TEST(Analysis, JitterIsDelayStddev) {
  Series constant = {s(0, 5), s(1, 5), s(2, 5)};
  EXPECT_DOUBLE_EQ(jitter(constant), 0.0);
  Series varying = {s(0, 1), s(1, 9)};
  EXPECT_DOUBLE_EQ(jitter(varying), 4.0);
}

TEST(Analysis, RatePerSecond) {
  Series series = {s(0, 100), s(1000, 100)};  // 200 units over 1 s
  const auto r = rate_per_second(series);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 200.0);
  EXPECT_FALSE(rate_per_second({s(0, 1)}).has_value());
}

TEST(Analysis, WindowedRate) {
  Series series = {s(0, 10), s(100, 10), s(600, 40)};
  const auto windows = windowed_rate(series, sim::SimTime::milliseconds(500));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].value, 40.0);  // 20 units / 0.5 s
  EXPECT_DOUBLE_EQ(windows[1].value, 80.0);
}

TEST(Presentation, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const auto out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same length (fixed-width alignment).
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    const auto len = nl - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = nl + 1;
  }
}

TEST(Presentation, FormatSi) {
  EXPECT_EQ(format_si(1'500'000.0, 1), "1.5M");
  EXPECT_EQ(format_si(2'000.0, 0), "2k");
  EXPECT_EQ(format_si(3.25e9, 2), "3.25G");
  EXPECT_EQ(format_si(12.0, 0), "12");
}

TEST(Collectors, SessionCollectorGathersWhiteboxAndThroughput) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  spec.sampling_period = sim::SimTime::milliseconds(50);
  SessionCollector collector(repo, session, spec);

  std::vector<std::uint8_t> data(20'000, 7);
  session.send(tko::Message::from_bytes(data, &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));

  EXPECT_GT(collector.whitebox_events(), 0u);
  const MetricKey sent{world.host(0).node_id(), session.id(), metrics::kPdusSent};
  ASSERT_TRUE(repo.summary(sent).has_value());
  EXPECT_GT(repo.summary(sent)->sum, 10.0);
  const MetricKey tput{world.host(0).node_id(), session.id(), metrics::kThroughputBps};
  ASSERT_NE(repo.series(tput), nullptr);
  EXPECT_GE(repo.series(tput)->size(), 10u);
  collector.detach();
}

TEST(Collectors, FilterRestrictsMetrics) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  spec.filter = {"connection."};
  SessionCollector collector(repo, session, spec);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(5000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  for (const auto& key : repo.keys()) {
    if (key.name == metrics::kThroughputBps) continue;  // periodic blackbox
    EXPECT_EQ(key.name.substr(0, 11), "connection.") << key.name;
  }
}

TEST(Collectors, HostCollectorSamplesCpuAndCopies) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  MetricRepository repo;
  HostCollector collector(repo, world.host(0), sim::SimTime::milliseconds(100));
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::udp_compat_config());
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(3000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  const MetricKey cpu{world.host(0).node_id(), 0, metrics::kCpuInstructions};
  ASSERT_TRUE(repo.summary(cpu).has_value());
  EXPECT_GT(repo.summary(cpu)->sum, 0.0);
}

TEST(Presentation, ReportsRenderWithoutCrashing) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  SessionCollector collector(repo, session, spec);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(8000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  const auto conn = render_connection_report(repo, world.host(0).node_id(), session.id());
  EXPECT_NE(conn.find("pdu.sent"), std::string::npos);
  const auto host = render_host_report(repo, world.host(0).node_id());
  EXPECT_NE(host.find("pdu.sent"), std::string::npos);
  const auto csv = series_to_csv(
      repo, MetricKey{world.host(0).node_id(), session.id(), metrics::kThroughputBps});
  EXPECT_NE(csv.find("when_ns,value"), std::string::npos);
  EXPECT_GT(csv.size(), 20u);
}

TEST(Collectors, MatchesFilterPredicate) {
  EXPECT_TRUE(SessionCollector::matches_filter("anything.at.all", {}));
  EXPECT_TRUE(SessionCollector::matches_filter("connection.throughput", {"connection."}));
  EXPECT_FALSE(SessionCollector::matches_filter("reliability.retx", {"connection."}));
  EXPECT_TRUE(
      SessionCollector::matches_filter("reliability.retx", {"connection.", "reliability."}));
  EXPECT_FALSE(SessionCollector::matches_filter("conn", {"connection."}));  // shorter than prefix
}

TEST(Collectors, DetachIsIdempotent) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  SessionCollector collector(repo, session, MeasurementSpec{});
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(2000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::milliseconds(200));
  collector.detach();
  const auto samples_after_detach = repo.total_samples();
  collector.detach();  // second detach must be a no-op, not a crash
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(2000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::milliseconds(200));
  EXPECT_EQ(repo.total_samples(), samples_after_detach);
}

TEST(Histogram, EmptyAndSingleSample) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.add(42.0);
  EXPECT_EQ(h.count(), 1u);
  // With one sample every percentile collapses to that sample.
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p999(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, PercentilesOrderedAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p999(), h.max());
  // Log buckets bound relative error to ~1/kSubBucketsPerOctave.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.15);
}

TEST(Histogram, MergeIsLossless) {
  Histogram a, b;
  for (int i = 0; i < 500; ++i) a.add(1.0 + i);
  for (int i = 0; i < 500; ++i) b.add(2000.0 + i);
  Histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), 1000u);
  EXPECT_DOUBLE_EQ(merged.min(), a.min());
  EXPECT_DOUBLE_EQ(merged.max(), b.max());
  EXPECT_GT(merged.p90(), a.max());  // upper decile lives in b's range
}

TEST(Trace, RingWraparoundKeepsNewestEvents) {
  TraceRecorder rec;
  rec.enable(/*capacity=*/8);
  EXPECT_TRUE(rec.enabled());
  for (int i = 0; i < 20; ++i) {
    rec.instant(TraceCategory::kTko, "tko.test", sim::SimTime::nanoseconds(i), 1, 7,
                static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.emitted(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first order, holding the 8 most recent values 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(12 + i));
  }
  rec.disable();
  rec.instant(TraceCategory::kTko, "tko.ignored", sim::SimTime::zero());
  EXPECT_EQ(rec.emitted(), 20u);  // disabled emits are free and unrecorded
}

TEST(Trace, ChromeTraceExportIsWellFormed) {
  TraceRecorder rec;
  rec.enable(16);
  rec.instant(TraceCategory::kMantts, "mantts.open", sim::SimTime::microseconds(5), 2, 3, 1.0,
              "explicit");
  rec.span(TraceCategory::kNet, "net.tx", sim::SimTime::microseconds(10),
           sim::SimTime::microseconds(2), 2, 0, 1024.0);
  std::ostringstream out;
  write_chrome_trace(out, rec);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("mantts.open"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(Trace, MetricsJsonlCarriesPercentiles) {
  MetricRepository repo;
  const MetricKey key{3, 9, metrics::kLatencyNs};
  for (int i = 1; i <= 200; ++i) {
    repo.record(key, sim::SimTime::milliseconds(i), 1e6 + i * 1e3);
  }
  std::ostringstream out;
  write_metrics_jsonl(out, repo);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"name\":\"latency.ns\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"p50\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
  const Histogram* h = repo.histogram(key);
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->p50(), 0.0);
}

TEST(Trace, EchoRoutesThroughLoggerSink) {
  std::vector<std::string> captured;
  sim::Logger::set_level(sim::LogLevel::kTrace);
  sim::Logger::set_sink([&](const std::string& line) { captured.push_back(line); });

  TraceRecorder rec;
  rec.enable(8);
  rec.set_echo(true);
  rec.instant(TraceCategory::kApp, "app.deliver", sim::SimTime::milliseconds(3), 1, 4, 88.0);
  rec.set_echo(false);
  rec.instant(TraceCategory::kApp, "app.deliver", sim::SimTime::milliseconds(4), 1, 4, 99.0);

  sim::Logger::set_sink(nullptr);
  sim::Logger::set_level(sim::LogLevel::kOff);

  ASSERT_EQ(captured.size(), 1u);  // only the echoed event reached the sink
  EXPECT_NE(captured[0].find("unites.trace"), std::string::npos);
  EXPECT_NE(captured[0].find("app.deliver"), std::string::npos);
  EXPECT_NE(captured[0].find("TRACE"), std::string::npos);
  EXPECT_EQ(rec.size(), 2u);  // both events still recorded regardless of echo
}

}  // namespace
}  // namespace adaptive::unites
