// Tests for UNITES: repository, analysis, collectors, presentation.
#include "adaptive/world.hpp"
#include "net/topologies.hpp"
#include "tko/sa/templates.hpp"
#include "unites/analysis.hpp"
#include "unites/collector.hpp"
#include "unites/presentation.hpp"
#include "unites/repository.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adaptive::unites {
namespace {

Sample s(double t_ms, double v) { return Sample{sim::SimTime::seconds(t_ms / 1000.0), v}; }

TEST(MetricClassification, BlackboxVsWhitebox) {
  EXPECT_EQ(classify_metric(metrics::kThroughputBps), MetricClass::kBlackbox);
  EXPECT_EQ(classify_metric(metrics::kLatencyNs), MetricClass::kBlackbox);
  EXPECT_EQ(classify_metric(metrics::kRetransmissions), MetricClass::kWhitebox);
  EXPECT_EQ(classify_metric("custom.thing"), MetricClass::kWhitebox);
}

TEST(Repository, RecordAndQuery) {
  MetricRepository repo;
  const MetricKey key{1, 42, "x"};
  repo.record(key, sim::SimTime::milliseconds(1), 10.0);
  repo.record(key, sim::SimTime::milliseconds(2), 20.0);
  const Series* series = repo.series(key);
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  const auto sum = repo.summary(key);
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->count, 2u);
  EXPECT_DOUBLE_EQ(sum->sum, 30.0);
  EXPECT_DOUBLE_EQ(sum->min, 10.0);
  EXPECT_DOUBLE_EQ(sum->max, 20.0);
  EXPECT_DOUBLE_EQ(sum->last, 20.0);
  EXPECT_EQ(repo.series(MetricKey{1, 42, "y"}), nullptr);
}

TEST(Repository, KeysFilters) {
  MetricRepository repo;
  repo.record({1, 10, "a"}, sim::SimTime::zero(), 1);
  repo.record({1, 11, "a"}, sim::SimTime::zero(), 1);
  repo.record({2, 10, "a"}, sim::SimTime::zero(), 1);
  EXPECT_EQ(repo.keys().size(), 3u);
  EXPECT_EQ(repo.keys_for_host(1).size(), 2u);
  EXPECT_EQ(repo.keys_for_connection(1, 11).size(), 1u);
  EXPECT_DOUBLE_EQ(repo.systemwide_sum("a"), 3.0);
}

TEST(Repository, CapsSeriesButKeepsSummary) {
  MetricRepository repo(16);
  const MetricKey key{1, 1, "x"};
  for (int i = 0; i < 100; ++i) repo.record(key, sim::SimTime::milliseconds(i), 1.0);
  EXPECT_LE(repo.series(key)->size(), 16u);
  EXPECT_EQ(repo.summary(key)->count, 100u);  // aggregate survives aging
}

TEST(Analysis, BasicStats) {
  Series series = {s(0, 1), s(1, 2), s(2, 3), s(3, 4), s(4, 5)};
  const auto st = analyze(series);
  EXPECT_EQ(st.count, 5u);
  EXPECT_DOUBLE_EQ(st.mean, 3.0);
  EXPECT_DOUBLE_EQ(st.min, 1.0);
  EXPECT_DOUBLE_EQ(st.max, 5.0);
  EXPECT_DOUBLE_EQ(st.p50, 3.0);
  EXPECT_NEAR(st.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_EQ(analyze({}).count, 0u);
}

TEST(Analysis, Percentiles) {
  Series series;
  for (int i = 1; i <= 100; ++i) series.push_back(s(i, i));
  const auto st = analyze(series);
  EXPECT_NEAR(st.p95, 95.05, 0.5);
  EXPECT_NEAR(st.p99, 99.01, 0.5);
}

TEST(Analysis, JitterIsDelayStddev) {
  Series constant = {s(0, 5), s(1, 5), s(2, 5)};
  EXPECT_DOUBLE_EQ(jitter(constant), 0.0);
  Series varying = {s(0, 1), s(1, 9)};
  EXPECT_DOUBLE_EQ(jitter(varying), 4.0);
}

TEST(Analysis, RatePerSecond) {
  Series series = {s(0, 100), s(1000, 100)};  // 200 units over 1 s
  const auto r = rate_per_second(series);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 200.0);
  EXPECT_FALSE(rate_per_second({s(0, 1)}).has_value());
}

TEST(Analysis, WindowedRate) {
  Series series = {s(0, 10), s(100, 10), s(600, 40)};
  const auto windows = windowed_rate(series, sim::SimTime::milliseconds(500));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].value, 40.0);  // 20 units / 0.5 s
  EXPECT_DOUBLE_EQ(windows[1].value, 80.0);
}

TEST(Presentation, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const auto out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same length (fixed-width alignment).
  std::size_t prev = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    const auto len = nl - pos;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    pos = nl + 1;
  }
}

TEST(Presentation, FormatSi) {
  EXPECT_EQ(format_si(1'500'000.0, 1), "1.5M");
  EXPECT_EQ(format_si(2'000.0, 0), "2k");
  EXPECT_EQ(format_si(3.25e9, 2), "3.25G");
  EXPECT_EQ(format_si(12.0, 0), "12");
}

TEST(Collectors, SessionCollectorGathersWhiteboxAndThroughput) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  spec.sampling_period = sim::SimTime::milliseconds(50);
  SessionCollector collector(repo, session, spec);

  std::vector<std::uint8_t> data(20'000, 7);
  session.send(tko::Message::from_bytes(data, &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));

  EXPECT_GT(collector.whitebox_events(), 0u);
  const MetricKey sent{world.host(0).node_id(), session.id(), metrics::kPdusSent};
  ASSERT_TRUE(repo.summary(sent).has_value());
  EXPECT_GT(repo.summary(sent)->sum, 10.0);
  const MetricKey tput{world.host(0).node_id(), session.id(), metrics::kThroughputBps};
  ASSERT_NE(repo.series(tput), nullptr);
  EXPECT_GE(repo.series(tput)->size(), 10u);
  collector.detach();
}

TEST(Collectors, FilterRestrictsMetrics) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  spec.filter = {"connection."};
  SessionCollector collector(repo, session, spec);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(5000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  for (const auto& key : repo.keys()) {
    if (key.name == metrics::kThroughputBps) continue;  // periodic blackbox
    EXPECT_EQ(key.name.substr(0, 11), "connection.") << key.name;
  }
}

TEST(Collectors, HostCollectorSamplesCpuAndCopies) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  MetricRepository repo;
  HostCollector collector(repo, world.host(0), sim::SimTime::milliseconds(100));
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::udp_compat_config());
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(3000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  const MetricKey cpu{world.host(0).node_id(), 0, metrics::kCpuInstructions};
  ASSERT_TRUE(repo.summary(cpu).has_value());
  EXPECT_GT(repo.summary(cpu)->sum, 0.0);
}

TEST(Presentation, ReportsRenderWithoutCrashing) {
  World world([](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, 5); });
  auto& session =
      world.transport(0).open({world.transport_address(1)}, tko::sa::reliable_bulk_config());
  MetricRepository repo;
  MeasurementSpec spec;
  SessionCollector collector(repo, session, spec);
  session.send(tko::Message::from_bytes(std::vector<std::uint8_t>(8000, 1),
                                        &world.host(0).buffers()));
  world.run_for(sim::SimTime::seconds(1));
  const auto conn = render_connection_report(repo, world.host(0).node_id(), session.id());
  EXPECT_NE(conn.find("pdu.sent"), std::string::npos);
  const auto host = render_host_report(repo, world.host(0).node_id());
  EXPECT_NE(host.find("pdu.sent"), std::string::npos);
  const auto csv = series_to_csv(
      repo, MetricKey{world.host(0).node_id(), session.id(), metrics::kThroughputBps});
  EXPECT_NE(csv.find("when_ns,value"), std::string::npos);
  EXPECT_GT(csv.size(), 20u);
}

}  // namespace
}  // namespace adaptive::unites
