// Whitebox observability suite (DESIGN.md §11): the UNITES zone profiler
// (RAII scoped timers, hierarchical trees, deterministic merge), causal
// message-lifecycle spans (assembly under retransmission and segue, the
// latency-breakdown metrics), the post-mortem flight recorder, and the
// determinism gate every canonical whitebox export must pass — byte
// identity between --jobs 1 and --jobs 8 over a 64-seed sweep.
#include "adaptive/sweep.hpp"
#include "sim/event_scheduler.hpp"
#include "unites/export.hpp"
#include "unites/flight_recorder.hpp"
#include "unites/profiler.hpp"
#include "unites/spans.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace adaptive {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

sim::SimTime us(std::int64_t v) { return sim::SimTime::microseconds(v); }

/// A profiler wired for unit tests: enabled, clocked by a local scheduler
/// the test can advance with run_until, installed as the thread's current.
struct TestProfiler {
  sim::EventScheduler sched;
  unites::Profiler prof;
  unites::ScopedProfiler scoped;

  TestProfiler() : scoped(prof) {
    prof.enable();
    prof.bind_clock(&sched);
  }
};

/// The test_parallel scenario family: 4-host seeded Ethernet LAN, 1s file
/// transfer — cheap enough for a 64-seed determinism sweep.
SweepConfig sweep_config(std::vector<std::uint64_t> seeds, std::size_t jobs) {
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); };
  };
  sc.base.application = app::Table1App::kFileTransfer;
  sc.base.mode = RunOptions::Mode::kManntts;
  sc.base.duration = sim::SimTime::seconds(1);
  sc.base.drain = sim::SimTime::seconds(1);
  sc.base.scale = 0.3;
  sc.base.collect_metrics = true;
  sc.seeds = std::move(seeds);
  sc.jobs = jobs;
  return sc;
}

std::vector<std::uint64_t> seed_range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t s = lo; s <= hi; ++s) out.push_back(s);
  return out;
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// Fresh per-test scratch directory under the build tree.
std::filesystem::path scratch_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("adaptive_whitebox_" + tag);
  std::filesystem::remove_all(dir);
  return dir;
}

unites::TraceEvent event(const char* name, std::int64_t when_ns, std::uint32_t session,
                         double value, net::NodeId node = 0) {
  unites::TraceEvent e;
  e.when = sim::SimTime(when_ns);
  e.name = name;
  e.category = unites::TraceCategory::kTko;
  e.node = node;
  e.session = session;
  e.value = value;
  return e;
}

// ---------------------------------------------------------------------------
// Profiler: scoped timers, nesting, reentrancy, determinism
// ---------------------------------------------------------------------------

TEST(Profiler, NestedScopesBuildAHierarchicalTreeWithSelfTimes) {
  TestProfiler t;
  {
    unites::ProfileScope alpha("alpha", 7);
    t.sched.run_until(us(10));
    {
      unites::ProfileScope beta("beta");
      t.sched.run_until(us(25));
    }
    {
      unites::ProfileScope beta_again("beta");
      t.sched.run_until(us(30));
    }
  }
  EXPECT_EQ(t.prof.entered(), 3u);

  const unites::ProfileTree tree = t.prof.snapshot();
  const unites::ProfileNode* alpha = tree.find({"session/7", "alpha"});
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->calls, 1u);
  // Self time excludes the children: 30us total minus 15us + 5us in beta.
  EXPECT_EQ(alpha->sim_ns, us(10).ns());

  const unites::ProfileNode* beta = tree.find({"session/7", "alpha", "beta"});
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->calls, 2u);  // the two blocks coalesced into one zone
  EXPECT_EQ(beta->sim_ns, us(20).ns());
}

TEST(Profiler, ReentrantZoneNestsUnderItself) {
  TestProfiler t;
  {
    unites::ProfileScope outer("recurse");
    t.sched.run_until(us(5));
    {
      unites::ProfileScope inner("recurse");
      t.sched.run_until(us(9));
    }
  }
  const unites::ProfileTree tree = t.prof.snapshot();
  const unites::ProfileNode* outer = tree.find({"session/0", "recurse"});
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(outer->sim_ns, us(5).ns());
  const unites::ProfileNode* inner = tree.find({"session/0", "recurse", "recurse"});
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 1u);
  EXPECT_EQ(inner->sim_ns, us(4).ns());
}

TEST(Profiler, RepeatedScopesAccumulateCallsIntoOneZone) {
  TestProfiler t;
  for (int i = 0; i < 100; ++i) {
    UNITES_PROF("hot.zone");
  }
  const unites::ProfileNode* zone = t.prof.snapshot().find({"session/0", "hot.zone"});
  ASSERT_NE(zone, nullptr);
  EXPECT_EQ(zone->calls, 100u);
  EXPECT_EQ(zone->sim_ns, 0);  // handlers run in zero virtual time
}

TEST(Profiler, DisabledOrUnclockedProfilerRecordsNothing) {
  {
    // Enabled but no clock bound (no world alive).
    unites::Profiler prof;
    prof.enable();
    unites::ScopedProfiler scoped(prof);
    UNITES_PROF("ghost");
    EXPECT_EQ(prof.entered(), 0u);
    EXPECT_TRUE(prof.snapshot().empty());
  }
  {
    // Clocked but disabled (the production default).
    sim::EventScheduler sched;
    unites::Profiler prof;
    prof.bind_clock(&sched);
    unites::ScopedProfiler scoped(prof);
    UNITES_PROF("ghost");
    EXPECT_EQ(prof.entered(), 0u);
    EXPECT_TRUE(prof.snapshot().empty());
    EXPECT_EQ(prof.snapshot().zone_count(), 0u);
  }
}

TEST(Profiler, SnapshotCoalescesEqualZoneNamesFromDistinctPointers) {
  // Two equal literals in different buffers — distinct addresses, one zone.
  static const char name_a[] = "dup.zone";
  static const char name_b[] = "dup.zone";
  ASSERT_NE(static_cast<const void*>(name_a), static_cast<const void*>(name_b));
  TestProfiler t;
  {
    unites::ProfileScope s(name_a);
  }
  {
    unites::ProfileScope s(name_b);
  }
  const unites::ProfileTree tree = t.prof.snapshot();
  ASSERT_EQ(tree.roots.size(), 1u);
  ASSERT_EQ(tree.roots[0].children.size(), 1u);
  EXPECT_EQ(tree.roots[0].children[0].name, "dup.zone");
  EXPECT_EQ(tree.roots[0].children[0].calls, 2u);
}

TEST(Profiler, MergeIsOrderIndependentInCanonicalForm) {
  auto build = [](std::initializer_list<const char*> zones) {
    TestProfiler t;
    for (const char* z : zones) {
      unites::ProfileScope s(z);
      t.sched.run_until(t.sched.now() + us(1));
    }
    return t.prof.snapshot();
  };
  const unites::ProfileTree a = build({"x", "y"});
  const unites::ProfileTree b = build({"z", "y"});

  unites::ProfileTree ab = a;
  ab.merge(b);
  unites::ProfileTree ba = b;
  ba.merge(a);
  EXPECT_EQ(unites::profile_to_json(ab, /*include_wall=*/false),
            unites::profile_to_json(ba, /*include_wall=*/false));
  const unites::ProfileNode* y = ab.find({"session/0", "y"});
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->calls, 2u);
  EXPECT_EQ(ab.zone_count(), 3u);
}

TEST(Profiler, ScopedProfilerRestoresThePreviousInstance) {
  sim::EventScheduler sched;
  unites::Profiler outer;
  outer.enable();
  outer.bind_clock(&sched);
  unites::ScopedProfiler outer_scope(outer);
  {
    unites::Profiler inner;
    inner.enable();
    inner.bind_clock(&sched);
    unites::ScopedProfiler inner_scope(inner);
    UNITES_PROF("inner.zone");
    EXPECT_EQ(inner.entered(), 1u);
  }
  UNITES_PROF("outer.zone");
  EXPECT_EQ(outer.entered(), 1u);  // the inner zone did not leak here
  EXPECT_EQ(outer.snapshot().find({"session/0", "inner.zone"}), nullptr);
}

// ---------------------------------------------------------------------------
// Span assembly from synthetic trace streams
// ---------------------------------------------------------------------------

TEST(Spans, AssemblesFullLifecycleWithRetransmissions) {
  const std::uint32_t unit = 42;
  std::vector<unites::TraceEvent> ev;
  ev.push_back(event(unites::lifecycle::kSubmit, 100, /*session=*/3, unit, /*node=*/1));
  ev.push_back(event(unites::lifecycle::kEnqueue, 150, 3, unites::pack_unit_seq(unit, 0), 1));
  ev.push_back(event(unites::lifecycle::kTx, 200, 3, unites::pack_unit_seq(unit, 0), 1));
  ev.push_back(event(unites::lifecycle::kTx, 260, 3, unites::pack_unit_seq(unit, 1), 1));
  // Segment 0 re-emitted: a retransmission, and it moves last_tx forward.
  ev.push_back(event(unites::lifecycle::kTx, 500, 3, unites::pack_unit_seq(unit, 0), 1));
  ev.push_back(event("app.deliver", 900, /*session=unit id*/ unit, 0.0));
  ev.push_back(event("app.playout", 1200, unit, 300.0));

  const auto spans = unites::assemble_spans(ev);
  ASSERT_EQ(spans.size(), 1u);
  const unites::MessageSpan& s = spans[0];
  EXPECT_EQ(s.unit, unit);
  EXPECT_EQ(s.session, 3u);
  EXPECT_EQ(s.src, 1u);
  EXPECT_EQ(s.submit_ns, 100);
  EXPECT_EQ(s.enqueue_ns, 150);
  EXPECT_EQ(s.first_tx_ns, 200);
  EXPECT_EQ(s.last_tx_ns, 500);
  EXPECT_EQ(s.segments, 2u);
  EXPECT_EQ(s.retx, 1u);
  EXPECT_EQ(s.deliver_ns, 900);
  EXPECT_EQ(s.playout_ns, 1200);
  EXPECT_FALSE(s.open());
  EXPECT_EQ(s.queue_ns(), 100);         // submit -> first tx
  EXPECT_EQ(s.retx_ns(), 300);          // first tx -> last tx
  EXPECT_EQ(s.tx_ns(), 400);            // last tx -> deliver
  EXPECT_EQ(s.playout_hold_ns(), 300);  // deliver -> playout
}

TEST(Spans, UndeliveredMessageStaysOpenAndIsExcludedFromBreakdown) {
  std::vector<unites::TraceEvent> ev;
  ev.push_back(event(unites::lifecycle::kSubmit, 100, 1, 7.0));
  ev.push_back(event(unites::lifecycle::kTx, 200, 1, unites::pack_unit_seq(7, 0)));

  const auto spans = unites::assemble_spans(ev);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].open());

  unites::MetricRepository repo;
  unites::record_span_breakdown(spans, repo);
  EXPECT_EQ(repo.series_count(), 0u);  // open spans never pollute metrics
}

TEST(Spans, BreakdownRecordsWhiteboxClassedMetrics) {
  const std::uint32_t unit = 5;
  std::vector<unites::TraceEvent> ev;
  ev.push_back(event(unites::lifecycle::kSubmit, 0, 9, unit, /*node=*/2));
  ev.push_back(event(unites::lifecycle::kTx, 40, 9, unites::pack_unit_seq(unit, 0), 2));
  ev.push_back(event("app.deliver", 100, unit, 0.0));

  unites::MetricRepository repo;
  unites::record_span_breakdown(unites::assemble_spans(ev), repo);

  const unites::MetricKey queue{2, 9, unites::metrics::kMsgQueueNs};
  ASSERT_NE(repo.series(queue), nullptr);
  EXPECT_EQ((*repo.series(queue))[0].value, 40.0);
  EXPECT_EQ(repo.metric_class(queue), unites::MetricClass::kWhitebox);

  std::ostringstream jsonl;
  unites::write_metrics_jsonl(jsonl, repo);
  EXPECT_NE(jsonl.str().find("\"name\":\"msg.queue_ns\",\"class\":\"whitebox\""),
            std::string::npos)
      << jsonl.str();
}

// Regression (PR 5 satellite): MetricRepository::merge used to drop the
// stored MetricClass, so whitebox metrics exported as "blackbox" after a
// sweep fold. The stored class must survive merge and reach the JSONL.
TEST(Spans, MetricClassSurvivesRepositoryMergeAndExport) {
  unites::MetricRepository shard;
  const unites::MetricKey key{1, 1, unites::metrics::kMsgTxNs};
  shard.record(key, sim::SimTime(10), 5.0, unites::MetricClass::kWhitebox);

  unites::MetricRepository merged;
  merged.merge(shard);
  EXPECT_EQ(merged.metric_class(key), unites::MetricClass::kWhitebox);

  std::ostringstream jsonl;
  unites::write_metrics_jsonl(jsonl, merged);
  EXPECT_NE(jsonl.str().find("\"class\":\"whitebox\""), std::string::npos) << jsonl.str();
}

// ---------------------------------------------------------------------------
// End-to-end spans: retransmission and segue survival
// ---------------------------------------------------------------------------

// The dual-path failover scenario (test_integration) reconfigures the live
// session mid-transfer (FEC segue). Lifecycle ids must survive the segue:
// messages submitted before and delivered after the reconfiguration still
// assemble into closed spans, and the profile shows the segue zone.
TEST(SpansEndToEnd, SpansSurviveASegueAndRetransmissionsUnderFailover) {
  unites::TraceRecorder recorder;
  recorder.enable(1 << 20);  // hold the whole 12s run; no ring wrap
  unites::ScopedTraceRecorder scoped(recorder);
  unites::Profiler profiler;
  profiler.enable();
  unites::ScopedProfiler scoped_prof(profiler);

  World world([](sim::EventScheduler& s) { return net::make_dual_path_wan(s, 27); });
  RunOptions opt;
  opt.application = app::Table1App::kManufacturingControl;
  opt.mode = RunOptions::Mode::kMantttsAdaptive;
  opt.duration = sim::SimTime::seconds(12);
  opt.scale = 0.5;
  world.scheduler().schedule_after(sim::SimTime::seconds(4), [&] {
    world.network().set_link_pair_up(world.topology().scenario_links[0], false);
  });
  const RunOutcome out = run_scenario(world, opt);
  ASSERT_GT(out.reconfigurations, 0u);  // the segue actually happened

  const auto spans = unites::assemble_spans(recorder.snapshot());
  ASSERT_FALSE(spans.empty());
  std::size_t closed = 0, with_milestones = 0;
  for (const auto& s : spans) {
    if (!s.open()) ++closed;
    if (s.submit_ns >= 0 && s.enqueue_ns >= 0 && s.first_tx_ns >= 0) ++with_milestones;
  }
  EXPECT_EQ(closed, out.sink.units_received);
  EXPECT_GT(with_milestones, 0u);

  // Whitebox proof the segue ran inside the instrumented zones.
  const unites::ProfileTree tree = profiler.snapshot();
  bool segue_zone = false;
  for (const auto& root : tree.roots) {
    std::vector<const unites::ProfileNode*> stack;
    for (const auto& c : root.children) stack.push_back(&c);
    while (!stack.empty()) {
      const unites::ProfileNode* n = stack.back();
      stack.pop_back();
      if (n->name == "context.segue" && n->calls > 0) segue_zone = true;
      for (const auto& c : n->children) stack.push_back(&c);
    }
  }
  EXPECT_TRUE(segue_zone);

  // Breakdown metrics from these spans are recordable and whitebox-classed.
  unites::MetricRepository repo;
  unites::record_span_breakdown(spans, repo);
  const auto keys = repo.keys();
  ASSERT_FALSE(keys.empty());
  for (const auto& k : keys) {
    EXPECT_EQ(repo.metric_class(k), unites::MetricClass::kWhitebox) << k.name;
  }
}

// A chaos corpus seed whose plan forces an outage: the reliability scheme
// retransmits, and the spans must show it.
TEST(SpansEndToEnd, ChaosOutageSeedProducesRetransmissionSpans) {
  SweepConfig sc;
  sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
    return [seed](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, seed); };
  };
  sc.base.application = app::Table1App::kFileTransfer;
  sc.base.mode = RunOptions::Mode::kMantttsAdaptive;
  sc.base.rules = mantts::PolicyEngine::fault_recovery_rules();
  sc.base.scale = 0.35;
  sc.base.duration = sim::SimTime::seconds(8);
  sc.base.drain = sim::SimTime::seconds(12);
  sc.base.collect_metrics = true;
  sc.chaos = 6;
  sc.seeds = {1};  // corpus seed: outage past the RTO backoff ceiling
  sc.jobs = 1;
  sc.capture_spans = true;
  sc.capture_profile = true;
  sc.trace_capacity = 1 << 20;  // no ring wrap: every tx milestone retained

  const SweepResult res = run_sweep(sc);
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].violations, 0u) << res.runs[0].violation_detail;

  ASSERT_FALSE(res.spans.empty());
  std::uint32_t retx_total = 0;
  for (const auto& s : res.spans) {
    EXPECT_EQ(s.seed, 1u);
    retx_total += s.retx;
  }
  EXPECT_GT(retx_total, 0u);  // the outage forced re-emissions

  // The breakdown histograms rode the canonical fold into merged metrics.
  const auto queue_hist = res.merged.systemwide_histogram(unites::metrics::kMsgQueueNs);
  EXPECT_GT(queue_hist.count(), 0u);

  // The profile attributes work to the reliability scheme that ran.
  EXPECT_GT(res.profile.zone_count(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism gate: canonical whitebox exports, --jobs 1 vs --jobs 8
// ---------------------------------------------------------------------------

TEST(WhiteboxDeterminism, SixtyFourSeedProfileSpanAndMetricExportsAreByteIdentical) {
  const auto seeds = seed_range(1, 64);
  SweepConfig serial_cfg = sweep_config(seeds, 1);
  serial_cfg.capture_profile = true;
  serial_cfg.capture_spans = true;
  SweepConfig parallel_cfg = sweep_config(seeds, 8);
  parallel_cfg.capture_profile = true;
  parallel_cfg.capture_spans = true;

  const SweepResult serial = run_sweep(serial_cfg);
  const SweepResult parallel = run_sweep(parallel_cfg);
  ASSERT_EQ(serial.runs.size(), 64u);

  // Collapsed flamegraph text.
  std::ostringstream collapsed_1, collapsed_8;
  unites::write_profile_collapsed(collapsed_1, serial.profile);
  unites::write_profile_collapsed(collapsed_8, parallel.profile);
  EXPECT_FALSE(collapsed_1.str().empty());
  EXPECT_EQ(collapsed_1.str(), collapsed_8.str());

  // Profile JSON in canonical form (virtual time only, no wall time).
  EXPECT_EQ(unites::profile_to_json(serial.profile, /*include_wall=*/false),
            unites::profile_to_json(parallel.profile, /*include_wall=*/false));
  EXPECT_GT(serial.profile.zone_count(), 0u);

  // Chrome span export.
  std::ostringstream spans_1, spans_8;
  unites::write_spans_chrome(spans_1, serial.spans);
  unites::write_spans_chrome(spans_8, parallel.spans);
  ASSERT_FALSE(serial.spans.empty());
  EXPECT_EQ(spans_1.str(), spans_8.str());

  // Merged metrics JSONL (now carrying the span-breakdown whitebox series).
  std::ostringstream metrics_1, metrics_8;
  unites::write_metrics_jsonl(metrics_1, serial.merged);
  unites::write_metrics_jsonl(metrics_8, parallel.merged);
  EXPECT_EQ(metrics_1.str(), metrics_8.str());
  EXPECT_NE(metrics_1.str().find("msg.queue_ns"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

// Engineered violation: partition the receiving host mid-transfer and
// never heal it. The reliable transfer silently loses the tail and the
// stall never recovers — the oracle flags it, and the observing shard must
// ship a complete post-mortem bundle naming the violated rule and the
// owning mechanism zone.
TEST(FlightRecorder, EngineeredViolationShipsACompleteBundle) {
  const auto dir = scratch_dir("violation");

  SweepConfig sc = sweep_config({77}, 1);
  sim::FaultSpec partition;
  partition.kind = sim::FaultKind::kPartition;
  partition.node = 1;  // the receiving host
  partition.at = sim::SimTime::milliseconds(300);
  partition.duration = sim::SimTime::seconds(60);  // outlives run + drain
  sc.base.faults = sim::FaultPlan{{partition}};
  sc.flight_recorder_dir = dir.string();

  const SweepResult res = run_sweep(sc);
  ASSERT_EQ(res.runs.size(), 1u);
  ASSERT_GT(res.runs[0].violations, 0u) << "the partition should have broken the contract";
  EXPECT_EQ(res.flight_bundles, 1u);

  const auto bundle_path = dir / "flight-seed77.json";
  ASSERT_TRUE(std::filesystem::exists(bundle_path));
  const std::string bundle = slurp(bundle_path);
  EXPECT_NE(bundle.find("\"reason\":\"invariant-violation\""), std::string::npos);
  EXPECT_NE(bundle.find("\"rule\":\"no-silent-loss\""), std::string::npos);
  // The owning zone names the reliability scheme that was accountable.
  EXPECT_NE(bundle.find("\"zone\":\"reliability."), std::string::npos);
  // A complete bundle: config, mechanism lineup, counters, open spans,
  // zone tree, fault plan, trace ring.
  for (const char* key : {"\"session_config\":", "\"context\":", "\"counters\":",
                          "\"open_spans\":", "\"spans_total\":", "\"profile\":",
                          "\"fault_plan\":", "\"trace\":"}) {
    EXPECT_NE(bundle.find(key), std::string::npos) << key;
  }
  // The undelivered tail shows up as open spans, not silence.
  EXPECT_NE(bundle.find("\"open\":true"), std::string::npos);
  EXPECT_NE(bundle.find("partition"), std::string::npos);

  std::filesystem::remove_all(dir);
}

// A clean run with an armed recorder writes nothing.
TEST(FlightRecorder, CleanRunWritesNoBundle) {
  const auto dir = scratch_dir("clean");
  SweepConfig sc = sweep_config({3}, 1);
  sc.flight_recorder_dir = dir.string();
  const SweepResult res = run_sweep(sc);
  ASSERT_EQ(res.runs.size(), 1u);
  EXPECT_EQ(res.runs[0].violations, 0u);
  EXPECT_EQ(res.flight_bundles, 0u);
  EXPECT_FALSE(std::filesystem::exists(dir / "flight-seed3.json"));
  std::filesystem::remove_all(dir);
}

// Corpus replay: a known-bad chaos seed from tests/corpus/chaos_seeds.txt
// (the watchdog-wedge seed), re-run with flight_record_always so the
// bundle documents the recovered episode. Serial and parallel replays of
// the same seed must produce byte-identical bundles — the flight recorder
// is part of the determinism contract.
TEST(FlightRecorder, ChaosCorpusSeedReplayBundleIsDeterministic) {
  // First congested-wan line of the corpus (the watchdog-wedge seed).
  std::size_t max_faults = 0;
  std::uint64_t corpus_seed = 0;
  {
    const std::string path = std::string(ADAPTIVE_TEST_CORPUS_DIR) + "/chaos_seeds.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "cannot read " << path;
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line.substr(0, line.find('#')));
      std::string topology;
      if (fields >> topology >> max_faults >> corpus_seed && topology == "congested-wan") break;
    }
    ASSERT_GT(corpus_seed, 0u) << "no congested-wan seed in " << path;
  }

  auto config_for = [&](const std::filesystem::path& dir, std::size_t jobs) {
    SweepConfig sc;
    sc.topology = [](std::uint64_t seed) -> World::TopologyFactory {
      return [seed](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, seed); };
    };
    sc.base.application = app::Table1App::kFileTransfer;
    sc.base.mode = RunOptions::Mode::kMantttsAdaptive;
    sc.base.rules = mantts::PolicyEngine::fault_recovery_rules();
    sc.base.scale = 0.35;
    sc.base.duration = sim::SimTime::seconds(8);
    sc.base.drain = sim::SimTime::seconds(12);
    sc.base.collect_metrics = true;
    sc.chaos = max_faults;
    sc.seeds = {corpus_seed};
    sc.jobs = jobs;
    sc.flight_recorder_dir = dir.string();
    sc.flight_record_always = true;
    return sc;
  };

  const auto dir_serial = scratch_dir("corpus_serial");
  const auto dir_parallel = scratch_dir("corpus_parallel");
  const SweepResult serial = run_sweep(config_for(dir_serial, 1));
  const SweepResult parallel = run_sweep(config_for(dir_parallel, 4));
  EXPECT_EQ(serial.flight_bundles, 1u);
  EXPECT_EQ(parallel.flight_bundles, 1u);

  const std::string bundle_name = "flight-seed" + std::to_string(corpus_seed) + ".json";
  const std::string bundle_serial = slurp(dir_serial / bundle_name);
  const std::string bundle_parallel = slurp(dir_parallel / bundle_name);
  ASSERT_FALSE(bundle_serial.empty());
  EXPECT_EQ(bundle_serial, bundle_parallel);

  // The corpus seed replays clean, so the reason is the replay request —
  // and the bundle still carries the full evidence (plan, zones, trace).
  EXPECT_NE(bundle_serial.find("\"reason\":\"replay\""), std::string::npos);
  EXPECT_NE(bundle_serial.find("\"chaos_plan\":"), std::string::npos);
  EXPECT_NE(bundle_serial.find("\"profile\":"), std::string::npos);
  EXPECT_EQ(serial.runs[0].violations, 0u) << serial.runs[0].violation_detail;

  std::filesystem::remove_all(dir_serial);
  std::filesystem::remove_all(dir_parallel);
}

}  // namespace
}  // namespace adaptive
