// adaptive_cli — drive one ADAPTIVE experiment from the command line.
//
// The "controlled prototyping environment" as a tool: pick a topology, a
// Table 1 application, a configuration policy, and run it; optionally
// attach a UNITES metric-spec program for the report.
//
//   adaptive_cli --topology congested-wan --app voice --mode manntts
//                --duration 5 --seed 7
//   adaptive_cli --topology campus --app teleconference --members 1,2,3
//   adaptive_cli --topology dual-path --app control --mode adaptive
//                --fail-link-at 4
//   adaptive_cli --app file-transfer --mode static-tp4 --spec my.spec
//
// Run with --help for the full option list.
#include "adaptive/scenario.hpp"
#include "adaptive/sweep.hpp"
#include "unites/export.hpp"
#include "unites/presentation.hpp"
#include "unites/profiler.hpp"
#include "unites/spans.hpp"
#include "unites/spec_language.hpp"
#include "unites/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

using namespace adaptive;

namespace {

struct CliOptions {
  std::string topology = "ethernet";
  std::string app = "file-transfer";
  std::string mode = "manntts";
  double duration = 5.0;
  double drain = 4.0;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::string seeds;      ///< non-empty: sweep over "A..B" or "a,b,c"
  std::size_t jobs = 1;   ///< sweep worker threads
  std::size_t chaos = 0;  ///< > 0: generate adversarial fault plans (max faults per run)
  bool chaos_mobility = false;  ///< --chaos mobility: handover/churn plans
  std::size_t src = 0;
  std::vector<std::size_t> members;
  std::string handover_plan;
  double fail_link_at = -1.0;
  std::string fault_plan;
  std::string spec_path;
  bool trace = false;
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;
  std::string span_out;
  std::string timeline_out;
  double timeline_period = 0.1;  ///< seconds of virtual time between samples
  std::string qos_out;
  std::string flight_dir;
};

void usage() {
  std::printf(
      "adaptive_cli — run one ADAPTIVE transport experiment\n\n"
      "  --topology <t>   ethernet | fddi | congested-wan | atm-wan | dual-path |\n"
      "                   campus | mobile-wan (host 0 mobile, host 1 correspondent)\n"
      "  --app <a>        voice | teleconference | video | video-raw | control |\n"
      "                   file-transfer | telnet | oltp | rfs\n"
      "  --mode <m>       manntts | adaptive | static-auto | static-stream |\n"
      "                   static-datagram | static-tp4\n"
      "  --duration <s>   workload duration in seconds (default 5)\n"
      "  --drain <s>      drain time after the source stops (default 4)\n"
      "  --scale <x>      workload rate/volume multiplier (default 1.0)\n"
      "  --seed <n>       RNG seed (default 1)\n"
      "  --seeds <set>    sweep seed set: inclusive range 'A..B' or list\n"
      "                   'a,b,c'. Runs one independent world per seed and\n"
      "                   merges the UNITES metrics/traces (seed order, so\n"
      "                   the report is identical for any --jobs value)\n"
      "  --jobs <n>       sweep worker threads (default 1 = serial)\n"
      "  --chaos <n>      chaos mode: derive a randomized adversarial fault\n"
      "                   plan (up to n faults: outages, flaps, bursts, delay,\n"
      "                   bandwidth cuts, wire mutations) per seed, run the\n"
      "                   delivery-invariant oracle on every outcome, and exit\n"
      "                   nonzero on any violation. Plans are pure functions\n"
      "                   of the seed: 'adaptive_cli --chaos n --seeds <s>'\n"
      "                   reproduces a reported seed exactly\n"
      "  --chaos mobility derive pure-mobility plans instead: mid-stream\n"
      "                   handovers of the topology's mobile host plus\n"
      "                   multicast leave/rejoin churn, judged by the\n"
      "                   survivability oracle (use --topology mobile-wan;\n"
      "                   combine with a numeric '--chaos n' run separately)\n"
      "  --src <h>        sender host index (default 0)\n"
      "  --members a,b,c  multicast member host indices\n"
      "  --handover-plan <p>  scripted mobility events, merged with\n"
      "                   --fault-plan, e.g.\n"
      "                   'handover@2+0.05:node=0,to=1,mode=mbb;leave@3:node=2;join@4:node=2'\n"
      "                   (handover re-homes the mobile host to attachment\n"
      "                   <to>; mode=mbb make-before-break, mode=bbm\n"
      "                   break-before-make; join/leave edit the multicast\n"
      "                   group mid-stream)\n"
      "  --fail-link-at <s>  fail the topology's first scenario link at t\n"
      "  --fault-plan <p> scripted impairments, e.g.\n"
      "                   'flap@2+0.3:link=0,count=3,period=1;burst@1+4:link=0,ber=1e-4'\n"
      "                   (kinds: down flap burst delay bw partition; times are\n"
      "                   seconds relative to workload start; adaptive mode\n"
      "                   also installs the fault-recovery policy rules)\n"
      "  --spec <file>    UNITES metric-spec program for the report\n"
      "  --trace          print the last 40 PDU interpreter steps\n"
      "  --trace-out <f>  write a Chrome trace_event JSON file (open in\n"
      "                   Perfetto / chrome://tracing) of all subsystem events\n"
      "  --metrics-out <f>  write the UNITES repository as JSONL (one metric\n"
      "                   per line, with histogram percentiles)\n"
      "  --profile-out <f>  enable the whitebox profiler and write the zone\n"
      "                   tree as flamegraph-collapsed text to <f> plus JSON\n"
      "                   to <f>.json (sweeps merge per-seed trees in seed\n"
      "                   order; the merged output is --jobs independent)\n"
      "  --span-out <f>   assemble causal message-lifecycle spans\n"
      "                   (submit->enqueue->tx->deliver->playout) and write\n"
      "                   them as Chrome async trace events to <f>; also\n"
      "                   records msg.queue/tx/retx latency breakdowns\n"
      "  --timeline-out <f>  sample the resource plane (pool live/copied\n"
      "                   bytes, per-session pinned bytes) on a virtual-time\n"
      "                   period and write the timeline as JSONL to <f> plus\n"
      "                   Chrome counter tracks to <f>.chrome.json (sweeps\n"
      "                   merge per-seed timelines in seed order; output is\n"
      "                   --jobs independent)\n"
      "  --timeline-period <s>  virtual seconds between timeline samples\n"
      "                   (default 0.1)\n"
      "  --qos-out <f>    write the QoS-conformance report (per-window\n"
      "                   verdicts, error-budget burn, breach episodes, QoE)\n"
      "                   as JSON to <f> (single runs; the monitor grades\n"
      "                   250ms virtual-time windows against the negotiated\n"
      "                   contract)\n"
      "  --flight-recorder-dir <d>  arm the post-mortem flight recorder:\n"
      "                   any seed that violates a delivery invariant (or\n"
      "                   stalls unrecovered) dumps a JSON evidence bundle\n"
      "                   to <d>/flight-seed<seed>.json\n");
}

std::optional<app::Table1App> parse_app(const std::string& s) {
  using A = app::Table1App;
  if (s == "voice") return A::kVoice;
  if (s == "teleconference") return A::kTeleconference;
  if (s == "video") return A::kVideoCompressed;
  if (s == "video-raw") return A::kVideoRaw;
  if (s == "control") return A::kManufacturingControl;
  if (s == "file-transfer") return A::kFileTransfer;
  if (s == "telnet") return A::kTelnet;
  if (s == "oltp") return A::kOltp;
  if (s == "rfs") return A::kRemoteFileService;
  return std::nullopt;
}

std::optional<RunOptions::Mode> parse_mode(const std::string& s) {
  using M = RunOptions::Mode;
  if (s == "manntts") return M::kManntts;
  if (s == "adaptive") return M::kMantttsAdaptive;
  if (s == "static-auto") return M::kStaticAuto;
  if (s == "static-stream") return M::kStaticStream;
  if (s == "static-datagram") return M::kStaticDatagram;
  if (s == "static-tp4") return M::kStaticTp4;
  return std::nullopt;
}

World::TopologyFactory topology_factory(const std::string& name, std::uint64_t seed, bool* ok) {
  *ok = true;
  if (name == "ethernet") {
    return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 4, seed); };
  }
  if (name == "fddi") {
    return [seed](sim::EventScheduler& s) { return net::make_fddi_ring(s, 4, seed); };
  }
  if (name == "congested-wan") {
    return [seed](sim::EventScheduler& s) { return net::make_congested_wan(s, 2, seed); };
  }
  if (name == "atm-wan") {
    return [seed](sim::EventScheduler& s) { return net::make_atm_wan(s, 2, seed); };
  }
  if (name == "dual-path") {
    return [seed](sim::EventScheduler& s) { return net::make_dual_path_wan(s, seed); };
  }
  if (name == "campus") {
    return [seed](sim::EventScheduler& s) { return net::make_multicast_campus(s, 8, seed); };
  }
  if (name == "mobile-wan") {
    return [seed](sim::EventScheduler& s) { return net::make_mobile_wan(s, 3, 3, seed); };
  }
  *ok = false;
  return [seed](sim::EventScheduler& s) { return net::make_ethernet_lan(s, 2, seed); };
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--trace") {
      opt.trace = true;
      continue;
    }
    const char* v = value();
    if (v == nullptr) {
      std::fprintf(stderr, "missing value for %s\n", arg.c_str());
      return std::nullopt;
    }
    if (arg == "--topology") opt.topology = v;
    else if (arg == "--app") opt.app = v;
    else if (arg == "--mode") opt.mode = v;
    else if (arg == "--duration") opt.duration = std::atof(v);
    else if (arg == "--drain") opt.drain = std::atof(v);
    else if (arg == "--scale") opt.scale = std::atof(v);
    else if (arg == "--seed") opt.seed = std::strtoull(v, nullptr, 10);
    else if (arg == "--seeds") opt.seeds = v;
    else if (arg == "--jobs") opt.jobs = std::max<std::size_t>(1, std::strtoull(v, nullptr, 10));
    else if (arg == "--chaos") {
      if (std::strcmp(v, "mobility") == 0) opt.chaos_mobility = true;
      else opt.chaos = std::strtoull(v, nullptr, 10);
    }
    else if (arg == "--src") opt.src = std::stoul(v);
    else if (arg == "--fail-link-at") opt.fail_link_at = std::atof(v);
    else if (arg == "--fault-plan") opt.fault_plan = v;
    else if (arg == "--handover-plan") opt.handover_plan = v;
    else if (arg == "--spec") opt.spec_path = v;
    else if (arg == "--trace-out") opt.trace_out = v;
    else if (arg == "--metrics-out") opt.metrics_out = v;
    else if (arg == "--profile-out") opt.profile_out = v;
    else if (arg == "--span-out") opt.span_out = v;
    else if (arg == "--timeline-out") opt.timeline_out = v;
    else if (arg == "--timeline-period") opt.timeline_period = std::atof(v);
    else if (arg == "--qos-out") opt.qos_out = v;
    else if (arg == "--flight-recorder-dir") opt.flight_dir = v;
    else if (arg == "--members") {
      std::istringstream in(v);
      std::string tok;
      while (std::getline(in, tok, ',')) opt.members.push_back(std::stoul(tok));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = parse_args(argc, argv);
  if (!cli.has_value()) {
    usage();
    return 1;
  }
  const auto application = parse_app(cli->app);
  const auto mode = parse_mode(cli->mode);
  bool topo_ok = false;
  auto factory = topology_factory(cli->topology, cli->seed, &topo_ok);
  if (!application.has_value() || !mode.has_value() || !topo_ok) {
    std::fprintf(stderr, "bad --app, --mode, or --topology\n\n");
    usage();
    return 1;
  }

  std::optional<unites::MetricSpecProgram> program;
  if (!cli->spec_path.empty()) {
    std::ifstream in(cli->spec_path);
    if (!in) {
      std::fprintf(stderr, "cannot read spec file %s\n", cli->spec_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::vector<std::string> errors;
    program = unites::parse_metric_spec(buf.str(), &errors);
    if (!program.has_value()) {
      for (const auto& e : errors) std::fprintf(stderr, "spec: %s\n", e.c_str());
      return 1;
    }
  }

  RunOptions opt;
  opt.application = *application;
  opt.mode = *mode;
  opt.duration = sim::SimTime::seconds(cli->duration);
  opt.drain = sim::SimTime::seconds(cli->drain);
  opt.scale = cli->scale;
  opt.seed = cli->seed;
  opt.src = cli->src;
  if (opt.dst == opt.src) opt.dst = opt.src == 0 ? 1 : 0;
  opt.multicast_members = cli->members;
  opt.collect_metrics = program.has_value() || !cli->metrics_out.empty();
  if (!cli->timeline_out.empty()) {
    opt.timeline_period = sim::SimTime::seconds(cli->timeline_period);
  }
  if (cli->trace) opt.trace = 40;
  // --fault-plan (impairments) and --handover-plan (mobility) share the
  // spec language and the FaultPlan container; the scenario routes each
  // kind to the right executor (injector vs mobility controller).
  std::string plan_text = cli->fault_plan;
  if (!cli->handover_plan.empty()) {
    if (!plan_text.empty()) plan_text += ';';
    plan_text += cli->handover_plan;
  }
  if (!plan_text.empty()) {
    std::vector<std::string> errors;
    const auto plan = sim::parse_fault_plan(plan_text, &errors);
    for (const auto& e : errors) std::fprintf(stderr, "fault-plan: %s\n", e.c_str());
    if (plan.empty()) {
      std::fprintf(stderr, "fault-plan: no valid specs\n");
      return 1;
    }
    opt.faults = plan;
    // Fault scenarios want the loss-rate-driven recovery rules; mobility
    // scenarios additionally want route-changed => resynthesize.
    if (*mode == RunOptions::Mode::kMantttsAdaptive) {
      opt.rules = cli->handover_plan.empty() ? mantts::PolicyEngine::fault_recovery_rules()
                                             : mantts::PolicyEngine::mobility_rules();
    }
    std::printf("fault plan: %s\n", plan.describe().c_str());
  }

  // --- sweep mode: one independent world per seed, merged UNITES view ---
  // A flight recorder implies sweep machinery even for one seed: the
  // bundle writer lives on the shard path.
  if (!cli->seeds.empty() || cli->jobs > 1 || cli->chaos > 0 || cli->chaos_mobility ||
      !cli->flight_dir.empty()) {
    SweepConfig sc;
    if (!cli->seeds.empty()) {
      std::string err;
      sc.seeds = parse_seed_set(cli->seeds, &err);
      if (sc.seeds.empty()) {
        std::fprintf(stderr, "--seeds: %s\n", err.c_str());
        return 1;
      }
    } else {
      sc.seeds = {cli->seed};
    }
    if (cli->fail_link_at >= 0.0) {
      std::fprintf(stderr, "--fail-link-at applies to single runs only; "
                           "use --fault-plan for sweeps\n");
      return 1;
    }
    const std::string topo_name = cli->topology;
    sc.topology = [topo_name](std::uint64_t seed) {
      bool ok = false;
      return topology_factory(topo_name, seed, &ok);
    };
    sc.base = opt;
    sc.base.collect_metrics = true;  // the merged report is the product
    sc.jobs = cli->jobs;
    sc.capture_trace = !cli->trace_out.empty();
    sc.capture_profile = !cli->profile_out.empty();
    sc.capture_spans = !cli->span_out.empty();
    sc.capture_timeline = !cli->timeline_out.empty();
    sc.timeline_period = sim::SimTime::seconds(cli->timeline_period);
    sc.flight_recorder_dir = cli->flight_dir;
    sc.chaos = cli->chaos;
    if (cli->chaos_mobility) {
      // Pure-mobility plans: handovers of the topology's mobile host plus
      // leave/rejoin churn over the non-endpoint member hosts. The
      // per-shard sizing pass clamps these against the actual topology.
      sc.chaos_profile.max_handovers = 3;
      sc.chaos_profile.max_membership_events = 4;
      sc.chaos_profile.churn_host_base = 2;
      sc.chaos_profile.churn_host_count = 8;
      sc.base.blackout_bound = sim::SimTime::seconds(2.0);
    }
    if ((cli->chaos > 0 || cli->chaos_mobility) &&
        *mode == RunOptions::Mode::kMantttsAdaptive && opt.rules.empty()) {
      sc.base.rules = cli->chaos_mobility ? mantts::PolicyEngine::mobility_rules()
                                          : mantts::PolicyEngine::fault_recovery_rules();
    }

    std::printf("sweeping %s over %s (%s mode, %.1fs, %zu seeds, %zu jobs%s%s)\n",
                app::to_string(*application), cli->topology.c_str(), cli->mode.c_str(),
                cli->duration, sc.seeds.size(), sc.jobs,
                cli->chaos > 0 ? ", chaos" : "",
                cli->chaos_mobility ? ", mobility chaos" : "");
    const SweepResult res = run_sweep(sc);

    std::size_t pass = 0;
    double throughput_sum = 0.0;
    for (const auto& r : res.runs) {
      pass += r.qos_pass ? 1 : 0;
      throughput_sum += r.throughput_bps;
    }
    std::printf("\nqos pass  : %zu/%zu seeds\n", pass, res.runs.size());
    {
      double tic_sum = 0.0;
      std::uint64_t windows = 0, breaches = 0;
      for (const auto& r : res.runs) {
        tic_sum += r.time_in_contract;
        windows += r.qos_windows;
        breaches += r.qos_breaches;
      }
      if (windows > 0) {
        std::printf("conformance: in-contract %.1f%% mean  %llu windows  %llu breach(es)\n",
                    tic_sum / static_cast<double>(res.runs.size()) * 100.0,
                    static_cast<unsigned long long>(windows),
                    static_cast<unsigned long long>(breaches));
      }
    }
    std::uint64_t violations = 0;
    for (const auto& r : res.runs) violations += r.violations;
    if (cli->chaos_mobility || opt.faults.has_value()) {
      std::uint64_t handovers = 0, membership = 0;
      double blackout_max = 0.0;
      for (const auto& r : res.runs) {
        handovers += r.handovers;
        membership += r.membership_events;
        blackout_max = std::max(blackout_max, r.blackout_max_sec);
      }
      if (handovers + membership > 0) {
        std::printf("mobility  : %llu handovers, %llu membership events, "
                    "worst blackout %.1fms\n",
                    static_cast<unsigned long long>(handovers),
                    static_cast<unsigned long long>(membership), blackout_max * 1e3);
      }
    }
    if (cli->chaos > 0 || cli->chaos_mobility || opt.faults.has_value()) {
      std::printf("invariants: %llu violation(s) across %zu seeds\n",
                  static_cast<unsigned long long>(violations), res.runs.size());
      for (const auto& r : res.runs) {
        if (r.violations == 0) continue;
        std::printf("  seed %llu: %s\n", static_cast<unsigned long long>(r.seed),
                    r.violation_detail.c_str());
        if (!r.chaos_plan.empty()) {
          std::printf("    plan : %s\n", r.chaos_plan.c_str());
          char chaos_arg[32];
          if (cli->chaos_mobility) std::snprintf(chaos_arg, sizeof chaos_arg, "mobility");
          else std::snprintf(chaos_arg, sizeof chaos_arg, "%zu", cli->chaos);
          std::printf("    repro: adaptive_cli --topology %s --app %s --mode %s "
                      "--duration %.1f --drain %.1f --chaos %s --seeds %llu\n",
                      cli->topology.c_str(), cli->app.c_str(), cli->mode.c_str(), cli->duration,
                      cli->drain, chaos_arg, static_cast<unsigned long long>(r.seed));
        }
      }
    }
    std::printf("throughput: %sbps mean per seed\n",
                unites::format_si(throughput_sum / static_cast<double>(res.runs.size())).c_str());
    const auto lat = res.merged.systemwide_histogram(unites::metrics::kLatencyNs);
    if (lat.count() > 0) {
      std::printf("latency   : p50 %.2fms  p99 %.2fms  p99.9 %.2fms (%llu samples)\n",
                  lat.p50() / 1e6, lat.p99() / 1e6, lat.p999() / 1e6,
                  static_cast<unsigned long long>(lat.count()));
    }
    std::printf("repository: %zu series, %llu samples\n", res.merged.series_count(),
                static_cast<unsigned long long>(res.merged.total_samples()));
    if (sc.capture_trace) {
      std::printf("trace     : %zu events retained (%llu emitted), digest %016llx\n",
                  res.trace.size(), static_cast<unsigned long long>(res.trace_events_emitted),
                  static_cast<unsigned long long>(res.trace_digest));
      std::ofstream tf(cli->trace_out);
      if (!tf) {
        std::fprintf(stderr, "cannot write trace file %s\n", cli->trace_out.c_str());
        return 1;
      }
      unites::write_chrome_trace(tf, res.trace);
      std::printf("            -> %s (open in Perfetto)\n", cli->trace_out.c_str());
    }
    if (!cli->metrics_out.empty()) {
      std::ofstream mf(cli->metrics_out);
      if (!mf) {
        std::fprintf(stderr, "cannot write metrics file %s\n", cli->metrics_out.c_str());
        return 1;
      }
      unites::write_metrics_jsonl(mf, res.merged);
      std::printf("metrics   : %zu series -> %s\n", res.merged.series_count(),
                  cli->metrics_out.c_str());
    }
    if (sc.capture_profile) {
      std::ofstream pf(cli->profile_out);
      if (!pf) {
        std::fprintf(stderr, "cannot write profile file %s\n", cli->profile_out.c_str());
        return 1;
      }
      // Canonical exports: virtual time only, so the file is --jobs
      // independent.
      unites::write_profile_collapsed(pf, res.profile);
      std::ofstream pj(cli->profile_out + ".json");
      if (!pj) {
        std::fprintf(stderr, "cannot write profile file %s.json\n", cli->profile_out.c_str());
        return 1;
      }
      unites::write_profile_json(pj, res.profile, /*include_wall=*/false);
      std::printf("profile   : %zu zones -> %s (+ .json)\n", res.profile.zone_count(),
                  cli->profile_out.c_str());
    }
    if (sc.capture_spans) {
      std::ofstream sf(cli->span_out);
      if (!sf) {
        std::fprintf(stderr, "cannot write span file %s\n", cli->span_out.c_str());
        return 1;
      }
      unites::write_spans_chrome(sf, res.spans);
      std::printf("spans     : %zu message lifecycles -> %s (open in Perfetto)\n",
                  res.spans.size(), cli->span_out.c_str());
    }
    if (sc.capture_timeline) {
      std::ofstream tlf(cli->timeline_out);
      if (!tlf) {
        std::fprintf(stderr, "cannot write timeline file %s\n", cli->timeline_out.c_str());
        return 1;
      }
      unites::write_timeline_jsonl(tlf, res.timeline);
      std::ofstream tlc(cli->timeline_out + ".chrome.json");
      if (!tlc) {
        std::fprintf(stderr, "cannot write timeline file %s.chrome.json\n",
                     cli->timeline_out.c_str());
        return 1;
      }
      unites::write_timeline_chrome(tlc, res.timeline);
      std::printf("timeline  : %zu points -> %s (+ .chrome.json counter tracks)\n",
                  res.timeline.size(), cli->timeline_out.c_str());
    }
    if (!sc.flight_recorder_dir.empty()) {
      std::printf("flight rec: %zu bundle(s) in %s\n", res.flight_bundles,
                  sc.flight_recorder_dir.c_str());
    }
    return violations > 0 ? 2 : 0;
  }

  // Enable the structured trace before any simulation object exists so
  // session synthesis and connection setup are on the timeline too.
  if (!cli->trace_out.empty() || !cli->span_out.empty()) unites::trace().enable();
  // Same for the whitebox profiler: the World binds its scheduler as the
  // virtual clock at construction.
  if (!cli->profile_out.empty()) unites::Profiler::current().enable();

  World world(factory);
  if (cli->fail_link_at >= 0.0 && !world.topology().scenario_links.empty()) {
    world.scheduler().schedule_after(sim::SimTime::seconds(cli->fail_link_at), [&world] {
      std::printf("[event] failing scenario link 0\n");
      world.network().set_link_pair_up(world.topology().scenario_links[0], false);
    });
  }

  std::printf("running %s over %s (%s mode, %.1fs, seed %llu)\n", app::to_string(*application),
              cli->topology.c_str(), cli->mode.c_str(), cli->duration,
              static_cast<unsigned long long>(cli->seed));
  const auto out = run_scenario(world, opt);

  std::printf("\nclass     : %s\n", mantts::to_string(out.tsc));
  std::printf("config    : %s\n", out.config.describe().c_str());
  std::printf("verdict   : %s\n", out.qos.verdict().c_str());
  std::printf("throughput: %sbps\n",
              unites::format_si(out.qos.achieved_throughput_bps).c_str());
  std::printf("delay     : mean %.2fms  max %.2fms  jitter %.3fms\n",
              static_cast<double>(out.qos.mean_latency_ns) * 1e-6,
              static_cast<double>(out.qos.max_latency_ns) * 1e-6,
              static_cast<double>(out.qos.jitter_ns) * 1e-6);
  std::printf("loss      : %.2f%%  misordered %llu  duplicates %llu\n",
              out.qos.loss_fraction * 100.0,
              static_cast<unsigned long long>(out.qos.misordered),
              static_cast<unsigned long long>(out.qos.duplicates));
  std::printf("reliability: retx %llu  timeouts %llu  fec-recoveries(rx) %llu\n",
              static_cast<unsigned long long>(out.reliability.retransmissions),
              static_cast<unsigned long long>(out.reliability.timeouts),
              static_cast<unsigned long long>(out.receiver_reliability.fec_recoveries));
  std::printf("segues    : %u\n", out.reconfigurations);
  if (out.qos.windowed) {
    std::printf("conformance: in-contract %.1f%%  windows %llu (%llu bad)  "
                "breaches %llu  budget %.0f%%  qoe %.3f\n",
                out.conformance.time_in_contract * 100.0,
                static_cast<unsigned long long>(out.conformance.windows.size()),
                static_cast<unsigned long long>(out.conformance.windows_bad),
                static_cast<unsigned long long>(out.conformance.breaches),
                out.conformance.budget_consumed * 100.0, out.conformance.qoe);
  }
  std::printf("invariants: %s\n", out.oracle.describe().c_str());
  if (opt.faults.has_value()) {
    std::printf("faults    : %llu episodes  detected %llu  recovered %llu\n",
                static_cast<unsigned long long>(out.fault.episodes_started),
                static_cast<unsigned long long>(out.mantts.faults_detected),
                static_cast<unsigned long long>(out.mantts.recoveries));
    std::printf("renegotiation: acked %llu  retries %llu  failed %llu  qos-downgrades %llu\n",
                static_cast<unsigned long long>(out.mantts.renegotiations),
                static_cast<unsigned long long>(out.mantts.reconfig_retries),
                static_cast<unsigned long long>(out.mantts.renegotiation_failures),
                static_cast<unsigned long long>(out.mantts.qos_downgrades));
  }
  if (cli->trace) {
    std::printf("\nlast interpreter steps (sender session):\n%s", out.trace_text.c_str());
  }
  std::printf("memory    : pool high-water %llu B  session high-water %llu B  copies %llu\n",
              static_cast<unsigned long long>(out.resource.pool_high_water_bytes()),
              static_cast<unsigned long long>(out.resource.session_high_water_bytes()),
              static_cast<unsigned long long>(out.resource.total_copies()));
  if (!cli->timeline_out.empty()) {
    unites::Timeline timeline = out.timeline;
    for (auto& p : timeline) p.seed = cli->seed;
    std::ofstream tlf(cli->timeline_out);
    if (!tlf) {
      std::fprintf(stderr, "cannot write timeline file %s\n", cli->timeline_out.c_str());
      return 1;
    }
    unites::write_timeline_jsonl(tlf, timeline);
    std::ofstream tlc(cli->timeline_out + ".chrome.json");
    if (!tlc) {
      std::fprintf(stderr, "cannot write timeline file %s.chrome.json\n",
                   cli->timeline_out.c_str());
      return 1;
    }
    unites::write_timeline_chrome(tlc, timeline);
    std::printf("timeline  : %zu points -> %s (+ .chrome.json counter tracks)\n", timeline.size(),
                cli->timeline_out.c_str());
  }
  if (!cli->qos_out.empty()) {
    std::ofstream qf(cli->qos_out);
    if (!qf) {
      std::fprintf(stderr, "cannot write qos file %s\n", cli->qos_out.c_str());
      return 1;
    }
    qf << out.conformance.to_json() << '\n';
    std::printf("qos       : conformance report -> %s\n", cli->qos_out.c_str());
  }

  if (program.has_value()) {
    // The session is closed by now; report against whatever the
    // repository holds for the sender host.
    std::printf("\nUNITES report (sender host):\n");
    for (const auto& key : world.repository().keys_for_host(world.host(0).node_id())) {
      (void)key;
      break;
    }
    // Reports are per-connection; use the most recent session's id space.
    // For simplicity report on every connection the repository saw.
    std::set<std::uint32_t> conns;
    for (const auto& key : world.repository().keys_for_host(world.host(0).node_id())) {
      conns.insert(key.connection);
    }
    for (const auto c : conns) {
      std::printf("%s\n",
                  unites::run_reports(*program, world.repository(), world.host(0).node_id(), c)
                      .c_str());
    }
  }

  if (!cli->trace_out.empty()) {
    std::ofstream tf(cli->trace_out);
    if (!tf) {
      std::fprintf(stderr, "cannot write trace file %s\n", cli->trace_out.c_str());
      return 1;
    }
    unites::write_chrome_trace(tf, unites::trace());
    std::printf("\ntrace     : %zu events -> %s (%llu dropped; open in Perfetto)\n",
                unites::trace().size(), cli->trace_out.c_str(),
                static_cast<unsigned long long>(unites::trace().dropped()));
  }
  if (!cli->metrics_out.empty()) {
    std::ofstream mf(cli->metrics_out);
    if (!mf) {
      std::fprintf(stderr, "cannot write metrics file %s\n", cli->metrics_out.c_str());
      return 1;
    }
    unites::write_metrics_jsonl(mf, world.repository());
    std::printf("metrics   : %zu series -> %s\n", world.repository().series_count(),
                cli->metrics_out.c_str());
  }
  if (!cli->profile_out.empty()) {
    const unites::ProfileTree tree = unites::Profiler::current().snapshot();
    std::ofstream pf(cli->profile_out);
    if (!pf) {
      std::fprintf(stderr, "cannot write profile file %s\n", cli->profile_out.c_str());
      return 1;
    }
    unites::write_profile_collapsed(pf, tree);
    std::ofstream pj(cli->profile_out + ".json");
    if (!pj) {
      std::fprintf(stderr, "cannot write profile file %s.json\n", cli->profile_out.c_str());
      return 1;
    }
    // Single run: wall time is the perf signal, include it.
    unites::write_profile_json(pj, tree, /*include_wall=*/true);
    std::printf("profile   : %zu zones -> %s (+ .json, with wall time)\n", tree.zone_count(),
                cli->profile_out.c_str());
  }
  if (!cli->span_out.empty()) {
    auto spans = unites::assemble_spans(unites::trace().snapshot());
    for (auto& s : spans) s.seed = cli->seed;
    std::ofstream sf(cli->span_out);
    if (!sf) {
      std::fprintf(stderr, "cannot write span file %s\n", cli->span_out.c_str());
      return 1;
    }
    unites::write_spans_chrome(sf, spans);
    std::printf("spans     : %zu message lifecycles -> %s (open in Perfetto)\n", spans.size(),
                cli->span_out.c_str());
  }
  return 0;
}
