// bench_diff: perf-regression gate over BENCH_<name>.json reports.
//
// Usage:
//   bench_diff <baseline.json> <candidate.json>
//       [--tolerances <file>] [--default-tol <rel>] [--section <name>]
//       [--all-sections]
//
// Compares every numeric key of the baseline's chosen section (default:
// "trajectory", the virtual-time-derived deterministic scalars) against
// the candidate, each key against its tolerance band. Exit codes:
//   0  every key within tolerance
//   1  at least one key out of band or missing from the candidate
//   2  usage or parse error
//
// CI runs this against baselines committed under bench/baselines/; see
// DESIGN §12.
#include "unites/regression.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <candidate.json>\n"
               "       [--tolerances <file>] [--default-tol <rel>]\n"
               "       [--section <name>] [--all-sections]\n");
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  std::string tolerances_path;
  std::string section = "trajectory";
  double default_tol = 0.05;
  bool all_sections = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerances") {
      tolerances_path = need_value();
    } else if (arg == "--default-tol") {
      default_tol = std::stod(need_value());
    } else if (arg == "--section") {
      section = need_value();
    } else if (arg == "--all-sections") {
      all_sections = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return usage();

  try {
    const auto baseline = adaptive::unites::parse_bench_report(slurp(baseline_path));
    const auto candidate = adaptive::unites::parse_bench_report(slurp(candidate_path));

    adaptive::unites::ToleranceSpec tol;
    tol.default_rel_tol = default_tol;
    if (!tolerances_path.empty()) {
      tol = adaptive::unites::ToleranceSpec::parse(slurp(tolerances_path), default_tol);
    }

    const std::string prefix = all_sections ? "" : section + ".";
    const auto diff = adaptive::unites::diff_reports(baseline, candidate, tol, prefix);

    std::cout << "bench_diff: " << baseline.bench << " baseline=" << baseline_path
              << " candidate=" << candidate_path << "\n"
              << adaptive::unites::render_diff(diff);
    if (diff.entries.empty()) {
      std::fprintf(stderr, "bench_diff: no keys matched section '%s' in %s\n", section.c_str(),
                   baseline_path.c_str());
      return 2;
    }
    std::cout << (diff.ok ? "bench_diff: OK\n" : "bench_diff: REGRESSION\n");
    return diff.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
